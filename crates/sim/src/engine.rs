//! The future-event list at the heart of the discrete-event engine.
//!
//! [`EventQueue`] is deliberately small: it owns the clock and the
//! pending `(time, seq, event)` entries. The *dispatch* of events — who
//! handles a packet arrival, a timer, a flow start — belongs to the domain
//! layers (`tcn-net`, `tcn-transport`); keeping the engine generic lets
//! each layer define its own event enum while sharing one battle-tested
//! ordering discipline.
//!
//! Ordering guarantees:
//!
//! * events pop in non-decreasing time order;
//! * two events scheduled for the same instant pop in the order they were
//!   scheduled (FIFO tie-break via a monotonically increasing sequence
//!   number), which is what makes whole-simulation runs reproducible.
//!
//! # Internal structure: a calendar queue
//!
//! DES workloads are dominated by *near-horizon* events: packet
//! serialization completions and arrivals a few microseconds out, with a
//! thin tail of far-future RTO timers. A single binary heap pays an
//! `O(log n)` comparison cascade (and moves whole entries on every sift)
//! for all of them. [`EventQueue`] instead keeps three tiers, a classic
//! calendar / bucketed future-event list (Brown's calendar queue, as used
//! by ns-2's scheduler):
//!
//! * **active** — a small binary heap holding only events of the *current
//!   day* (a day is a fixed `2^20` ps ≈ 1 µs slice of simulated time).
//!   Pops come from here; the heap is tiny, so each pop is cheap.
//! * **ring** — `NUM_BUCKETS` unsorted buckets covering the next
//!   `NUM_BUCKETS` days. Scheduling into the ring is an `O(1)` push; a
//!   bucket is heapified wholesale (`O(k)`) only when its day becomes
//!   current. A `BTreeSet` of non-empty days lets the queue jump over
//!   empty days instead of scanning them.
//! * **overflow** — a binary heap for events beyond the ring's horizon
//!   (far-future timers; rare). Whenever the current day advances, any
//!   overflow events that fell inside the new window migrate into the
//!   ring.
//!
//! The tiers are disjoint in time — `active` (current day) < every ring
//! day < every overflow day — so the earliest pending event is always in
//! `active` after a (possibly empty) advance step, and the global
//! `(time, seq)` order is exactly the one the plain heap produces. That
//! equivalence is enforced by a 10⁶-operation randomized differential
//! test against [`HeapEventQueue`] (`tests/engine_differential.rs`).

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use tcn_telemetry::{Event as TelemetryEvent, Probe};

use crate::time::Time;

/// A scheduled event: the payload plus its firing time and tie-break
/// sequence number.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Absolute firing time.
    pub at: Time,
    /// Insertion sequence number; the FIFO tie-break at equal times.
    pub seq: u64,
    /// Caller-defined payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest*
    /// entry first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Width of one calendar day as a power of two of picoseconds:
/// `2^20` ps ≈ 1.05 µs, on the order of one 1500 B serialization at
/// 10 Gbps — so a day holds a handful of events under paper-scale load.
const DAY_SHIFT: u32 = 20;

/// Days covered by the bucket ring ahead of the current day. With
/// `DAY_SHIFT = 20` the ring spans ≈ 1.07 ms of simulated time: every
/// packet-timescale event lands in `O(1)` buckets, while millisecond RTO
/// timers take the (rare) overflow path.
const NUM_BUCKETS: usize = 1024;

/// Default pop-count stride between telemetry `Tick` events: frequent
/// enough to chart engine progress, sparse enough that a multi-million
/// event run emits thousands — not millions — of ticks.
const DEFAULT_TICK_INTERVAL: u64 = 4096;

#[inline(always)]
fn day_of(at: Time) -> u64 {
    at.as_ps() >> DAY_SHIFT
}

/// A future-event list with a monotonic clock.
///
/// ```
/// use tcn_sim::{EventQueue, Time};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_at(Time::from_us(5), "second");
/// q.schedule_at(Time::from_us(1), "first");
/// q.schedule_at(Time::from_us(5), "third"); // same time: FIFO order
///
/// assert_eq!(q.pop().unwrap().event, "first");
/// assert_eq!(q.now(), Time::from_us(1));
/// assert_eq!(q.pop().unwrap().event, "second");
/// assert_eq!(q.pop().unwrap().event, "third");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Events of the current day, heap-ordered. Every pop comes from
    /// here; [`EventQueue::advance`] refills it from the ring/overflow.
    active: BinaryHeap<EventEntry<E>>,
    /// The bucket ring: unsorted per-day buckets for days in
    /// `(cur_day, cur_day + NUM_BUCKETS)`, indexed by `day % NUM_BUCKETS`.
    buckets: Vec<Vec<EventEntry<E>>>,
    /// Non-empty ring days, for skipping empty days in `O(log)`.
    days: BTreeSet<u64>,
    /// Events at or beyond `cur_day + NUM_BUCKETS`, heap-ordered.
    overflow: BinaryHeap<EventEntry<E>>,
    /// The day `active` serves.
    cur_day: u64,
    /// Total entries across all three tiers.
    pending: usize,
    now: Time,
    next_seq: u64,
    processed: u64,
    /// Invariant checker (no-op unless auditing is active): every pop is
    /// replayed through `tcn_audit::ClockAudit`, which independently
    /// re-verifies monotonicity and the FIFO tie-break rather than
    /// trusting the calendar structure's ordering argument.
    clock_audit: tcn_audit::ClockAudit,
    /// Telemetry probe: off (a single branch per sampled pop) unless a
    /// `tcn_telemetry::Telemetry` bus is installed.
    probe: Probe,
    /// Pops between telemetry `Tick` emissions.
    tick_interval: u64,
    /// Memoized [`EventQueue::peek_time`] result, guarded by
    /// `peek_valid`. Interior mutability because `peek_time` takes
    /// `&self` (the next-event time cannot change under `&self`, so
    /// memoizing is sound); every `&mut self` mutation refreshes or
    /// invalidates it. Without this, a driver loop that peeks once per
    /// pop re-runs the `O(k)` next-bucket scan on *every* iteration
    /// whenever the active day has drained.
    peek_cache: Cell<Option<Time>>,
    /// True when `peek_cache` holds the answer.
    peek_valid: Cell<bool>,
    /// Number of `O(k)` next-bucket scans `peek_time` has performed —
    /// observable in unit tests to prove the drained-day path stops
    /// rescanning.
    bucket_scans: Cell<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            active: BinaryHeap::new(),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            days: BTreeSet::new(),
            overflow: BinaryHeap::new(),
            cur_day: 0,
            pending: 0,
            now: Time::ZERO,
            next_seq: 0,
            processed: 0,
            clock_audit: tcn_audit::ClockAudit::new(),
            probe: Probe::off(),
            tick_interval: DEFAULT_TICK_INTERVAL,
            peek_cache: Cell::new(None),
            peek_valid: Cell::new(true),
            bucket_scans: Cell::new(0),
        }
    }

    /// Install a telemetry probe: every `tick_interval`-th pop emits a
    /// [`TelemetryEvent::Tick`], and [`EventQueue::clear`] epoch-resets
    /// the attached bus. Installing [`Probe::off`] uninstalls.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The installed probe (off by default). Domain layers driving this
    /// queue clone it to scope their own component probes.
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Override the pop-count stride between telemetry ticks.
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub fn set_tick_interval(&mut self, every: u64) {
        assert!(every > 0, "tick interval must be positive");
        self.tick_interval = every;
    }

    /// Current simulated time: the firing time of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far (for progress reporting and the
    /// engine microbenches).
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past is always
    /// a simulation bug, and failing loudly beats silently reordering
    /// history.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        self.clock_audit.on_schedule(at.as_ps(), self.now.as_ps());
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(EventEntry { at, seq, event });
    }

    /// Schedule `event` after a relative delay from `now()`.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, event);
    }

    /// Consume and return the next tie-break sequence number *without*
    /// scheduling anything.
    ///
    /// This is the coalescing primitive: a caller that used to schedule
    /// an event eagerly, but now wants to defer (or elide) it, reserves
    /// the sequence number the eager schedule would have taken. Any
    /// event scheduled through it later with
    /// [`schedule_at_reserved`](Self::schedule_at_reserved) then
    /// occupies exactly the same position in every same-instant
    /// tie-break as the eager schedule would have — which is what keeps
    /// coalesced runs byte-identical to uncoalesced ones. A reservation
    /// that is never used simply leaves a gap in the sequence space
    /// (gaps are fine; only relative order matters).
    #[inline]
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedule `event` at `at` under a sequence number previously
    /// obtained from [`reserve_seq`](Self::reserve_seq).
    ///
    /// # Panics
    /// Panics if `at` is in the past or `seq` was never reserved.
    pub fn schedule_at_reserved(&mut self, at: Time, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        assert!(
            seq < self.next_seq,
            "seq {seq} was never reserved (next_seq {})",
            self.next_seq
        );
        self.clock_audit.on_schedule(at.as_ps(), self.now.as_ps());
        self.insert(EventEntry { at, seq, event });
    }

    /// Place an entry into the tier its day selects. `day <= cur_day`
    /// can only mean the current day (schedule never targets the past),
    /// and keeps `active` correct even for entries migrating out of
    /// overflow.
    fn insert(&mut self, entry: EventEntry<E>) {
        self.pending += 1;
        // Min-merge the memoized peek time: a valid cache stays valid
        // because an insert can only move the next firing time earlier.
        if self.peek_valid.get() {
            match self.peek_cache.get() {
                Some(c) if c <= entry.at => {}
                _ => self.peek_cache.set(Some(entry.at)),
            }
        }
        let day = day_of(entry.at);
        if day <= self.cur_day {
            self.active.push(entry);
        } else if day < self.cur_day + NUM_BUCKETS as u64 {
            let bucket = &mut self.buckets[(day % NUM_BUCKETS as u64) as usize];
            if bucket.is_empty() {
                self.days.insert(day);
            }
            bucket.push(entry);
        } else {
            self.overflow.push(entry);
        }
    }

    /// Refill `active` for the next non-empty day (ring first — its days
    /// always precede overflow days — then overflow), migrating overflow
    /// events that the advanced window now covers.
    fn advance(&mut self) {
        let ring_day = self.days.first().copied();
        let overflow_day = self.overflow.peek().map(|e| day_of(e.at));
        let next = match (ring_day, overflow_day) {
            (None, None) => return,
            (Some(d), None) | (None, Some(d)) => d,
            (Some(a), Some(b)) => a.min(b),
        };
        self.cur_day = next;
        if ring_day == Some(next) {
            self.days.remove(&next);
            let bucket = std::mem::take(&mut self.buckets[(next % NUM_BUCKETS as u64) as usize]);
            debug_assert!(self.active.is_empty());
            self.active = BinaryHeap::from(bucket);
        }
        // Pull every overflow event the new window covers into the ring
        // (or straight into `active` for the current day), restoring the
        // tier invariant `overflow days >= cur_day + NUM_BUCKETS`.
        while let Some(top) = self.overflow.peek() {
            let day = day_of(top.at);
            if day >= self.cur_day + NUM_BUCKETS as u64 {
                break;
            }
            let Some(entry) = self.overflow.pop() else {
                break;
            };
            self.pending -= 1; // `insert` re-counts it
            self.insert(entry);
        }
    }

    /// Pop the next event, advancing the clock to its firing time.
    /// Returns `None` when the simulation has run dry.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        if self.active.is_empty() {
            self.advance();
        }
        let entry = self.active.pop()?;
        self.pending -= 1;
        debug_assert!(entry.at >= self.now, "clock went backwards");
        self.clock_audit.on_pop(entry.at.as_ps(), entry.seq);
        self.now = entry.at;
        self.processed += 1;
        if self.probe.is_on() && self.processed % self.tick_interval == 0 {
            self.probe.emit(|| TelemetryEvent::Tick {
                at_ps: entry.at.as_ps(),
                events: self.processed,
                pending: self.pending as u64,
            });
        }
        self.refresh_peek_cache();
        Some(entry)
    }

    /// Drain *every* event at the next firing time into `out` (which is
    /// cleared first), advancing the clock to that time. Returns the
    /// batch size — 0 when the simulation has run dry.
    ///
    /// The batch is in FIFO (sequence) order, exactly the order the same
    /// events would pop one at a time — the three tiers keep same-instant
    /// events in the same day, so after one (possibly empty) advance the
    /// whole batch sits in `active` and drains without further tier
    /// interaction. Clock-audit and telemetry accounting amortize per
    /// batch: one `on_pop_batch` boundary check instead of `n` `on_pop`
    /// calls, and `Tick` events for exactly the pop counts the per-event
    /// path would have emitted them at.
    pub fn pop_batch_into(&mut self, out: &mut Vec<EventEntry<E>>) -> usize {
        out.clear();
        if self.active.is_empty() {
            self.advance();
        }
        let Some(first) = self.active.pop() else {
            return 0;
        };
        let at = first.at;
        let first_seq = first.seq;
        let mut last_seq = first.seq;
        out.push(first);
        while let Some(top) = self.active.peek() {
            if top.at != at {
                break;
            }
            let Some(e) = self.active.pop() else { break };
            last_seq = e.seq;
            out.push(e);
        }
        let n = out.len();
        self.pending -= n;
        debug_assert!(at >= self.now, "clock went backwards");
        self.clock_audit
            .on_pop_batch(at.as_ps(), first_seq, last_seq, n as u64);
        self.now = at;
        let before = self.processed;
        self.processed += n as u64;
        if self.probe.is_on() {
            // Per-event Tick parity: the i-th entry of the batch (1-based)
            // corresponds to pop number `before + i` with
            // `pending_before - i` still pending; emit a Tick for every
            // stride multiple the batch crosses.
            let stride = self.tick_interval;
            let pending_before = (self.pending + n) as u64;
            let mut k = (before / stride + 1) * stride;
            while k <= self.processed {
                let i = k - before;
                self.probe.emit(|| TelemetryEvent::Tick {
                    at_ps: at.as_ps(),
                    events: k,
                    pending: pending_before - i,
                });
                k += stride;
            }
        }
        self.refresh_peek_cache();
        n
    }

    /// Return the undispatched tail of the batch most recently drained
    /// by [`pop_batch_into`](Self::pop_batch_into) — a run loop that hit
    /// its goal mid-batch hands back everything it did not dispatch, and
    /// the queue behaves as if those events had never been popped: they
    /// keep their original sequence numbers (so FIFO order is untouched),
    /// `processed` rolls back, and the clock-audit history rewinds so the
    /// inevitable re-pop of the same entries is not flagged as a
    /// tie-break violation. `tail` is drained.
    ///
    /// The entries fire at `now`, so they land straight back in the
    /// active tier (`day <= cur_day`).
    pub fn unpop_batch_tail(&mut self, tail: &mut Vec<EventEntry<E>>) {
        let n = tail.len();
        if n == 0 {
            return;
        }
        debug_assert!(
            tail.iter().all(|e| e.at == self.now),
            "unpopped tail must fire at the current instant"
        );
        self.clock_audit.on_unpop(self.now.as_ps(), tail[0].seq);
        self.processed -= n as u64;
        for e in tail.drain(..) {
            self.insert(e);
        }
        self.refresh_peek_cache();
    }

    /// Re-memoize the peek time after pops mutated `active`: `O(1)` from
    /// the active heap's top, or a definitive `None` when fully drained;
    /// only a non-empty queue with a drained active day defers to the
    /// next `peek_time` call's bucket scan.
    #[inline]
    fn refresh_peek_cache(&mut self) {
        if let Some(e) = self.active.peek() {
            self.peek_cache.set(Some(e.at));
            self.peek_valid.set(true);
        } else if self.pending == 0 {
            self.peek_cache.set(None);
            self.peek_valid.set(true);
        } else {
            self.peek_valid.set(false);
        }
    }

    /// Firing time of the next event without popping it.
    ///
    /// Memoized: `O(1)` while the cache is valid (the common case —
    /// every insert min-merges into it and every pop refreshes it from
    /// the active heap's top). The `O(k)` scan of the next non-empty
    /// bucket runs at most once per drained day, not once per
    /// driver-loop iteration.
    pub fn peek_time(&self) -> Option<Time> {
        if self.peek_valid.get() {
            return self.peek_cache.get();
        }
        let t = self.compute_peek_time();
        self.peek_cache.set(t);
        self.peek_valid.set(true);
        t
    }

    /// The uncached peek: active top, else a scan of the next non-empty
    /// ring bucket, else the overflow top.
    fn compute_peek_time(&self) -> Option<Time> {
        if let Some(e) = self.active.peek() {
            return Some(e.at);
        }
        if let Some(&d) = self.days.first() {
            self.bucket_scans.set(self.bucket_scans.get() + 1);
            return self.buckets[(d % NUM_BUCKETS as u64) as usize]
                .iter()
                .map(|e| e.at)
                .min();
        }
        self.overflow.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Drop every pending event (used when an experiment reaches its flow
    /// quota and wants to stop cleanly) and restart tie-break sequence
    /// numbering from 0 — with nothing pending, no tie can straddle the
    /// clear. The clock (`now`) and `processed` are untouched. The
    /// embedded `ClockAudit` is resynced so the next pop — which may
    /// legally carry a smaller `seq` at the same instant — is not
    /// misreported as a FIFO inversion. Any installed telemetry bus is
    /// epoch-reset for the same reason: a reused engine must not report
    /// series from the previous run as if they belonged to the new one.
    pub fn clear(&mut self) {
        self.active.clear();
        for day in std::mem::take(&mut self.days) {
            self.buckets[(day % NUM_BUCKETS as u64) as usize].clear();
        }
        self.overflow.clear();
        self.pending = 0;
        self.next_seq = 0;
        self.peek_cache.set(None);
        self.peek_valid.set(true);
        self.clock_audit.on_clear();
        self.probe.on_clear();
    }
}

/// The straightforward single-binary-heap future-event list.
///
/// This is the original `EventQueue` implementation, kept as the
/// *reference oracle*: the calendar-queue [`EventQueue`] must produce the
/// identical `(time, seq)` pop order (proven by the randomized
/// differential test in `tests/engine_differential.rs`), and the
/// `perfbench` harness measures the calendar queue's pops/sec against
/// this baseline in the same run. It carries no audit hooks — as the
/// oracle it must stay an independent, obviously-correct restatement of
/// the ordering contract.
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    now: Time,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time: the firing time of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { at, seq, event });
    }

    /// Schedule `event` after a relative delay from `now()`.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, event);
    }

    /// Consume the next tie-break sequence number without scheduling
    /// (the oracle mirror of [`EventQueue::reserve_seq`]).
    #[inline]
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedule under a previously reserved sequence number (the oracle
    /// mirror of [`EventQueue::schedule_at_reserved`]).
    ///
    /// # Panics
    /// Panics if `at` is in the past or `seq` was never reserved.
    pub fn schedule_at_reserved(&mut self, at: Time, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        assert!(
            seq < self.next_seq,
            "seq {seq} was never reserved (next_seq {})",
            self.next_seq
        );
        self.heap.push(EventEntry { at, seq, event });
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        self.processed += 1;
        Some(entry)
    }

    /// Drain every event at the next firing time into `out` (the oracle
    /// mirror of [`EventQueue::pop_batch_into`]). Returns the batch
    /// size.
    pub fn pop_batch_into(&mut self, out: &mut Vec<EventEntry<E>>) -> usize {
        out.clear();
        let Some(first) = self.heap.pop() else {
            return 0;
        };
        let at = first.at;
        out.push(first);
        while let Some(top) = self.heap.peek() {
            if top.at != at {
                break;
            }
            let Some(e) = self.heap.pop() else { break };
            out.push(e);
        }
        self.now = at;
        self.processed += out.len() as u64;
        out.len()
    }

    /// Return an undispatched batch tail (the oracle mirror of
    /// [`EventQueue::unpop_batch_tail`]). `tail` is drained.
    pub fn unpop_batch_tail(&mut self, tail: &mut Vec<EventEntry<E>>) {
        self.processed -= tail.len() as u64;
        for e in tail.drain(..) {
            self.heap.push(e);
        }
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event and restart sequence numbering (the
    /// same semantics as [`EventQueue::clear`]).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(30), 3);
        q.schedule_at(Time::from_ns(10), 1);
        q.schedule_at(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_us(7);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_us(5), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_us(5));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_us(10), "a");
        q.pop();
        q.schedule_in(Time::from_us(5), "b");
        let e = q.pop().unwrap();
        assert_eq!(e.at, Time::from_us(15));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_us(10), ());
        q.pop();
        q.schedule_at(Time::from_us(9), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_us(3), ());
        assert_eq!(q.peek_time(), Some(Time::from_us(3)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_sees_across_all_tiers() {
        let mut q = EventQueue::new();
        // Only a far-future event: peek must reach into overflow.
        q.schedule_at(Time::from_ms(500), 1);
        assert_eq!(q.peek_time(), Some(Time::from_ms(500)));
        // A nearer ring event supersedes it.
        q.schedule_at(Time::from_us(40), 2);
        assert_eq!(q.peek_time(), Some(Time::from_us(40)));
        // And a current-day event supersedes both.
        q.schedule_at(Time::from_ns(10), 3);
        assert_eq!(q.peek_time(), Some(Time::from_ns(10)));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_us(3), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_restarts_seq_and_resyncs_audit() {
        // Pop an event, clear with events still pending, then schedule at
        // the *same instant*: the fresh entry gets seq 0, which a stale
        // ClockAudit would flag as a FIFO inversion (the satellite bug).
        let mut q = EventQueue::new();
        let t = Time::from_us(9);
        q.schedule_at(t, 1u32);
        q.schedule_at(Time::from_ms(50), 2); // far-future leftover
        assert_eq!(q.pop().map(|e| e.event), Some(1));
        q.clear();
        assert!(q.is_empty());
        q.schedule_at(t, 3); // same time as the last pop, seq restarted
        let e = q.pop();
        assert_eq!(e.as_ref().map(|e| e.seq), Some(0));
        assert_eq!(e.map(|e| e.event), Some(3));
        // The clock never went backwards.
        assert_eq!(q.now(), t);
    }

    #[test]
    fn clear_keeps_clock_and_processed() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_us(2), ());
        q.pop();
        q.schedule_at(Time::from_us(4), ());
        q.clear();
        assert_eq!(q.now(), Time::from_us(2));
        assert_eq!(q.processed(), 1);
    }

    #[test]
    fn processed_counts() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule_at(Time::from_ns(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.processed(), 10);
    }

    #[test]
    fn interleaved_schedule_pop_keeps_order() {
        // A mini "simulation": each event at t schedules another at t+2.
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(0), 0u64);
        let mut fired = Vec::new();
        while let Some(e) = q.pop() {
            fired.push(e.at.as_ns());
            if e.event < 5 {
                q.schedule_in(Time::from_ns(2), e.event + 1);
            }
        }
        assert_eq!(fired, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn far_future_overflow_pops_in_order() {
        // Events beyond the ring horizon (cur_day + NUM_BUCKETS days)
        // land in overflow and must still interleave correctly with
        // near events, including FIFO at equal far times.
        let mut q = EventQueue::new();
        let far = Time::from_ms(100); // » ring span (≈1 ms)
        q.schedule_at(far, 10);
        q.schedule_at(far, 11); // same far instant: FIFO
        q.schedule_at(Time::from_us(1), 1);
        q.schedule_at(Time::from_ms(2), 2); // beyond ring too
        q.schedule_at(Time::from_ns(50), 0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![0, 1, 2, 10, 11]);
    }

    #[test]
    fn overflow_migrates_into_ring_on_advance() {
        // After the clock advances near a far event, newly scheduled
        // nearby events must still order correctly around the migrated
        // overflow event.
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ms(10), "far");
        q.schedule_at(Time::from_us(1), "near");
        assert_eq!(q.pop().map(|e| e.event), Some("near"));
        // Now schedule just before and just after the far event.
        q.schedule_at(Time::from_ms(10) - Time::from_ns(1), "before");
        q.schedule_at(Time::from_ms(10) + Time::from_ns(1), "after");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["before", "far", "after"]);
    }

    #[test]
    fn time_max_saturation() {
        // `Time::MAX` events (e.g. a saturated `schedule_in`) live in the
        // last possible day; they must schedule, peek and pop without
        // overflowing the day arithmetic, with FIFO at the saturated
        // instant.
        let mut q = EventQueue::new();
        q.schedule_at(Time::MAX, 1u32);
        q.schedule_at(Time::from_ns(5), 0);
        q.pop();
        // Saturating relative schedule: now + MAX saturates to MAX.
        q.schedule_in(Time::MAX, 2);
        assert_eq!(q.peek_time(), Some(Time::MAX));
        assert_eq!(q.pop().map(|e| e.event), Some(1));
        assert_eq!(q.pop().map(|e| e.event), Some(2));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), Time::MAX);
    }

    #[test]
    fn telemetry_tick_samples_every_nth_pop() {
        use tcn_telemetry::{MemorySink, Telemetry};
        let bus = Telemetry::new();
        let mem = MemorySink::new();
        bus.add_sink(Box::new(mem.handle()));
        let mut q = EventQueue::new();
        q.set_probe(bus.probe());
        q.set_tick_interval(10);
        for i in 0..35u64 {
            q.schedule_at(Time::from_ns(i), i);
        }
        while q.pop().is_some() {}
        // Pops 10, 20, 30 hit the stride.
        let ticks = mem.events();
        assert_eq!(ticks.len(), 3);
        match ticks[0] {
            TelemetryEvent::Tick { events, .. } => assert_eq!(events, 10),
            ref other => panic!("expected a tick, got {other:?}"),
        }
    }

    #[test]
    fn clear_epoch_resets_installed_telemetry() {
        // The satellite bug: a reused engine must not report series from
        // the previous run. clear() epoch-resets the bus, so the sink
        // only ever holds post-clear events.
        use tcn_telemetry::{MemorySink, Telemetry};
        let bus = Telemetry::new();
        let mem = MemorySink::new();
        bus.add_sink(Box::new(mem.handle()));
        let mut q = EventQueue::new();
        q.set_probe(bus.probe());
        q.set_tick_interval(1);
        q.schedule_at(Time::from_ns(1), 1u32);
        q.schedule_at(Time::from_ns(2), 2);
        q.pop();
        assert_eq!(mem.len(), 1, "first run recorded");
        q.clear();
        assert_eq!(bus.epoch(), 1);
        assert!(mem.is_empty(), "stale first-run series must be dropped");
        q.schedule_at(Time::from_ns(5), 3);
        q.pop();
        let evs = mem.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at_ps(), Time::from_ns(5).as_ps());
    }

    #[test]
    fn peek_is_cached_on_drained_day() {
        // The satellite bug: once the active day drains, every peek
        // re-scanned the next non-empty bucket. With the memo, a
        // peek-per-loop driver pays exactly one scan per drained day.
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(10), 0u32); // current day
        q.schedule_at(Time::from_us(50), 1); // a later ring day
        q.schedule_at(Time::from_us(50), 2);
        assert_eq!(q.pop().map(|e| e.event), Some(0));
        // Active day drained, ring still populated: the first peek scans…
        assert_eq!(q.peek_time(), Some(Time::from_us(50)));
        assert_eq!(q.bucket_scans.get(), 1);
        // …and every subsequent peek is served from the cache.
        for _ in 0..100 {
            assert_eq!(q.peek_time(), Some(Time::from_us(50)));
        }
        assert_eq!(q.bucket_scans.get(), 1);
    }

    #[test]
    fn peek_cache_invalidates_on_insert_pop_clear() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_us(9), 1u32);
        assert_eq!(q.peek_time(), Some(Time::from_us(9)));
        // Insert an earlier event: the cache must follow it down.
        q.schedule_at(Time::from_us(4), 2);
        assert_eq!(q.peek_time(), Some(Time::from_us(4)));
        // Pop: the cache must advance past the popped entry.
        q.pop();
        assert_eq!(q.peek_time(), Some(Time::from_us(9)));
        // Clear: the cache must report empty.
        q.clear();
        assert_eq!(q.peek_time(), None);
        // And a fresh schedule repopulates it.
        q.schedule_at(Time::from_ms(20), 3); // overflow tier
        assert_eq!(q.peek_time(), Some(Time::from_ms(20)));
    }

    #[test]
    fn pop_batch_drains_exactly_one_instant() {
        let mut q = EventQueue::new();
        let t = Time::from_us(3);
        for i in 0..5 {
            q.schedule_at(t, i);
        }
        q.schedule_at(Time::from_us(8), 99);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch_into(&mut batch), 5);
        assert_eq!(
            batch.iter().map(|e| e.event).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4],
            "batch is in FIFO order"
        );
        assert!(batch.iter().all(|e| e.at == t));
        assert_eq!(q.now(), t);
        assert_eq!(q.len(), 1);
        assert_eq!(q.processed(), 5);
        assert_eq!(q.pop_batch_into(&mut batch), 1);
        assert_eq!(batch[0].event, 99);
        assert_eq!(q.pop_batch_into(&mut batch), 0);
        assert!(batch.is_empty());
    }

    #[test]
    fn pop_batch_matches_per_event_pops() {
        // Same shaped workload through two queues: batched drain must
        // yield the identical (at, seq, event) stream as one-at-a-time
        // pops, across all three tiers.
        let mk = || {
            let mut q = EventQueue::new();
            let mut x = 0x9E3779B97F4A7C15u64;
            for i in 0..500u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.schedule_at(Time::from_ns((x % 2_000_000) * 4), i);
            }
            q
        };
        let mut a = mk();
        let mut b = mk();
        let mut per_event = Vec::new();
        while let Some(e) = a.pop() {
            per_event.push((e.at, e.seq, e.event));
        }
        let mut batched = Vec::new();
        let mut scratch = Vec::new();
        while b.pop_batch_into(&mut scratch) > 0 {
            batched.extend(scratch.iter().map(|e| (e.at, e.seq, e.event)));
        }
        assert_eq!(per_event, batched);
        assert_eq!(a.processed(), b.processed());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn pop_batch_tick_parity() {
        // Batched drain must emit exactly the Ticks the per-event path
        // would: same stride crossings, same events/pending payloads.
        use tcn_telemetry::{MemorySink, Telemetry};
        let run = |batched: bool| {
            let bus = Telemetry::new();
            let mem = MemorySink::new();
            bus.add_sink(Box::new(mem.handle()));
            let mut q = EventQueue::new();
            q.set_probe(bus.probe());
            q.set_tick_interval(4);
            for i in 0..10u64 {
                q.schedule_at(Time::from_ns(7), i); // one big same-instant burst
            }
            q.schedule_at(Time::from_ns(9), 10);
            if batched {
                let mut scratch = Vec::new();
                while q.pop_batch_into(&mut scratch) > 0 {}
            } else {
                while q.pop().is_some() {}
            }
            mem.events()
                .iter()
                .map(|e| match *e {
                    TelemetryEvent::Tick { at_ps, events, pending } => (at_ps, events, pending),
                    ref other => panic!("expected a tick, got {other:?}"),
                })
                .collect::<Vec<_>>()
        };
        let per_event = run(false);
        let batch = run(true);
        assert_eq!(per_event, batch);
        assert_eq!(batch.len(), 2); // pops 4 and 8 cross the stride
    }

    #[test]
    fn reserved_seq_keeps_fifo_slot() {
        // Reserve a seq, schedule other events at the same instant, then
        // fill the reservation: it must pop in the reserved position —
        // exactly where an eager schedule would have placed it.
        let mut q = EventQueue::new();
        let t = Time::from_us(2);
        q.schedule_at(t, "a");
        let held = q.reserve_seq();
        q.schedule_at(t, "c");
        q.schedule_at_reserved(t, held, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn unused_reservation_is_a_harmless_gap() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_us(1), 1u32);
        let _gap = q.reserve_seq();
        q.schedule_at(Time::from_us(1), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "never reserved")]
    fn scheduling_unreserved_seq_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at_reserved(Time::from_us(1), 5, ());
    }

    #[test]
    fn unpopped_tail_pops_again_unchanged() {
        let mut q = EventQueue::new();
        let t = Time::from_us(3);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        q.schedule_at(Time::from_us(9), 99);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch_into(&mut batch), 10);
        // Dispatch 4, hand 6 back — the queue must forget the pops.
        let mut tail: Vec<_> = batch.drain(4..).collect();
        let returned: Vec<(Time, u64, i32)> =
            tail.iter().map(|e| (e.at, e.seq, e.event)).collect();
        q.unpop_batch_tail(&mut tail);
        assert!(tail.is_empty());
        assert_eq!(q.processed(), 4);
        assert_eq!(q.len(), 7);
        assert_eq!(q.peek_time(), Some(t));
        // The tail comes back in the same (time, seq, event) order, then
        // the later event follows — exactly as if never popped.
        assert_eq!(q.pop_batch_into(&mut batch), 6);
        let repopped: Vec<(Time, u64, i32)> =
            batch.iter().map(|e| (e.at, e.seq, e.event)).collect();
        assert_eq!(repopped, returned);
        assert_eq!(q.pop_batch_into(&mut batch), 1);
        assert_eq!(batch[0].event, 99);
        assert_eq!(q.processed(), 11);
    }

    #[test]
    fn unpop_of_empty_tail_is_noop() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_us(1), 7);
        let mut batch = Vec::new();
        q.pop_batch_into(&mut batch);
        let mut empty: Vec<EventEntry<i32>> = Vec::new();
        q.unpop_batch_tail(&mut empty);
        assert_eq!(q.processed(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn heap_queue_unpop_mirrors_engine() {
        let mut q = HeapEventQueue::new();
        let t = Time::from_us(3);
        for i in 0..6 {
            q.schedule_at(t, i);
        }
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch_into(&mut batch), 6);
        let mut tail: Vec<_> = batch.drain(2..).collect();
        q.unpop_batch_tail(&mut tail);
        assert_eq!(q.processed(), 2);
        assert_eq!(q.pop_batch_into(&mut batch), 4);
        assert_eq!(
            batch.iter().map(|e| e.event).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn heap_queue_mirrors_batch_and_reservation() {
        let mut q = HeapEventQueue::new();
        let t = Time::from_us(2);
        q.schedule_at(t, "a");
        let held = q.reserve_seq();
        q.schedule_at(t, "c");
        q.schedule_at(Time::from_us(5), "d");
        q.schedule_at_reserved(t, held, "b");
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch_into(&mut batch), 3);
        assert_eq!(
            batch.iter().map(|e| e.event).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert_eq!(q.pop_batch_into(&mut batch), 1);
        assert_eq!(batch[0].event, "d");
        assert_eq!(q.pop_batch_into(&mut batch), 0);
        assert_eq!(q.processed(), 4);
    }

    #[test]
    fn reference_heap_queue_matches_basic_contract() {
        let mut q = HeapEventQueue::new();
        q.schedule_at(Time::from_ns(30), 3);
        q.schedule_at(Time::from_ns(10), 1);
        q.schedule_at(Time::from_ns(10), 2); // FIFO at equal time
        assert_eq!(q.peek_time(), Some(Time::from_ns(10)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.processed(), 3);
        assert_eq!(q.now(), Time::from_ns(30));
    }
}
