//! Exponentially weighted moving average.
//!
//! Three places in the paper smooth a signal exactly this way:
//!
//! * Algorithm 1 smooths the sampled departure rate into `avg_rate`
//!   (§3.3, "we use 0.875 as the averaging parameter");
//! * MQ-ECN smooths its per-queue service-rate estimate with β = 0.75;
//! * DCTCP maintains `α ← (1−g)·α + g·F` with g = 1/16.
//!
//! [`Ewma`] captures the shared shape: `avg ← w·avg + (1−w)·sample`, with
//! the first sample adopted verbatim so the average never starts from a
//! fictitious zero.

/// An exponentially weighted moving average with "first sample wins"
/// initialization.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    /// Weight on the *old* average, in `[0, 1)`. Larger = smoother.
    weight: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA where the previous average keeps `weight` of its
    /// mass on each update (e.g. `0.875` for Algorithm 1).
    ///
    /// # Panics
    /// Panics unless `0 ≤ weight < 1`.
    pub fn new(weight: f64) -> Self {
        assert!((0.0..1.0).contains(&weight), "EWMA weight out of range");
        Ewma {
            weight,
            value: None,
        }
    }

    /// Feed one sample, returning the updated average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            None => sample,
            Some(prev) => self.weight * prev + (1.0 - self.weight) * sample,
        };
        self.value = Some(next);
        next
    }

    /// Current average, or `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `default` before the first sample.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// True once at least one sample has been absorbed.
    pub fn is_primed(&self) -> bool {
        self.value.is_some()
    }

    /// Forget all history (used when a queue goes idle long enough that
    /// stale rate estimates would mislead, cf. MQ-ECN's `T_idle`).
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// Overwrite the average directly (used by meters that must restart
    /// from a known rate, e.g. line rate on first activation).
    pub fn prime(&mut self, value: f64) {
        self.value = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_adopted() {
        let mut e = Ewma::new(0.875);
        assert!(!e.is_primed());
        assert_eq!(e.update(10.0), 10.0);
        assert!(e.is_primed());
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.875);
        e.update(0.0);
        let mut last = 0.0;
        for _ in 0..200 {
            last = e.update(5.0);
        }
        assert!((last - 5.0).abs() < 1e-6);
    }

    #[test]
    fn update_formula_matches_paper() {
        // avg' = w*avg + (1-w)*sample with w = 0.875.
        let mut e = Ewma::new(0.875);
        e.update(8.0);
        let v = e.update(0.0);
        assert!((v - 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_tracks_sample() {
        let mut e = Ewma::new(0.0);
        e.update(3.0);
        assert_eq!(e.update(9.0), 9.0);
    }

    #[test]
    fn reset_forgets() {
        let mut e = Ewma::new(0.5);
        e.update(4.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.update(2.0), 2.0);
    }

    #[test]
    fn prime_sets_value() {
        let mut e = Ewma::new(0.5);
        e.prime(10.0);
        assert_eq!(e.value_or(0.0), 10.0);
        assert_eq!(e.update(0.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "EWMA weight out of range")]
    fn weight_one_rejected() {
        Ewma::new(1.0);
    }

    #[test]
    fn smoother_weight_moves_less() {
        let mut fast = Ewma::new(0.5);
        let mut slow = Ewma::new(0.95);
        fast.update(0.0);
        slow.update(0.0);
        let f = fast.update(10.0);
        let s = slow.update(10.0);
        assert!(f > s);
    }
}
