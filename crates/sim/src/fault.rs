//! Deterministic fault-injection plans: what can go wrong on a link,
//! and when.
//!
//! A [`FaultPlan`] is pure data — a seeded description of per-link
//! stochastic faults (loss, corruption, delay jitter) plus a timed
//! schedule of link down/up events (flaps). The network layer threads
//! the plan through its event loop; this module only decides *what*
//! faults exist and hands out the isolated per-link random streams
//! that make replays bit-identical for a given seed.
//!
//! Design notes:
//!
//! * Per-link RNG isolation via [`Rng::stream`]: drawing a loss verdict
//!   on link 3 never advances link 5's stream, so adding faults to one
//!   link cannot perturb another link's fault sequence.
//! * A *quiet* profile (all probabilities zero) draws nothing at all —
//!   a plan with quiet profiles and no flaps is behaviourally identical
//!   to running without any plan installed, event for event.
//! * Flaps are scheduled wall-clock events, not random, so a single
//!   mid-run failure is expressible exactly (paper-style "kill one
//!   spine uplink at t = 10 ms" experiments).

use crate::rng::Rng;
use crate::time::Time;

/// The kinds of fault the injection layer can model. Each variant's
/// doc comment names the real-world failure mode it stands in for
/// (the xtask lint `fault-kind-doc` enforces this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Random Bernoulli packet loss on the wire — models congestion-less
    /// drops from a dirty optic, marginal SerDes or shallow-buffer
    /// microburst discard that the port ledger never sees.
    Loss,
    /// Bit corruption in flight — the frame arrives but fails its FCS
    /// at the receiving NIC and is discarded there, as with a failing
    /// transceiver or damaged cable; counted separately from wire loss.
    Corrupt,
    /// Bounded extra propagation delay (delay jitter) — models store-and-
    /// forward wander or a flapping retimer; enough jitter reorders
    /// packets and provokes spurious dup-ACKs.
    Jitter,
    /// A link going down mid-run — cable pull, switch reboot or laser
    /// failure; packets in flight are lost and routing must reconverge
    /// around the dead link.
    LinkDown,
    /// A previously downed link being restored — the repair/reboot
    /// completing; routing reconverges again to reclaim the capacity.
    LinkUp,
    /// The ECN field bleached to Not-ECT in flight — models a legacy
    /// middlebox or tunnel that rewrites the ToS byte and silently
    /// strips ECT, the classic failure RFC 9000 §13.4.2 path validation
    /// exists to catch (the flow must fall back to loss-based control).
    EcnBleach,
    /// A spurious CE mark stamped on a packet that crossed no congested
    /// queue — models a broken shaper or policer that marks everything
    /// it touches; an unvalidated ECN flow throttles toward zero there.
    EcnSpuriousCe,
}

/// Stochastic fault intensities for one link. All probabilities are
/// per-packet and independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultProfile {
    /// Probability a departing packet is silently lost on the wire.
    pub loss: f64,
    /// Probability a departing packet is corrupted (dropped at the
    /// receiving NIC, with its own counter).
    pub corrupt: f64,
    /// Probability a departing packet is jittered.
    pub jitter_prob: f64,
    /// Maximum extra propagation delay for a jittered packet; the
    /// actual extra delay is uniform in `[0, jitter_max]`.
    pub jitter_max: Time,
    /// Probability a departing packet's ECN field is bleached to
    /// Not-ECT (ToS-rewriting middlebox; see [`FaultKind::EcnBleach`]).
    pub ecn_bleach: f64,
    /// Probability a departing packet is stamped CE regardless of queue
    /// state (mark-everything mangler; see
    /// [`FaultKind::EcnSpuriousCe`]).
    pub ecn_ce: f64,
}

impl LinkFaultProfile {
    /// A profile that injects nothing.
    pub const NONE: LinkFaultProfile = LinkFaultProfile {
        loss: 0.0,
        corrupt: 0.0,
        jitter_prob: 0.0,
        jitter_max: Time::ZERO,
        ecn_bleach: 0.0,
        ecn_ce: 0.0,
    };

    /// Pure Bernoulli loss at `rate`, nothing else.
    pub fn loss(rate: f64) -> Self {
        LinkFaultProfile {
            loss: rate,
            ..LinkFaultProfile::NONE
        }
    }

    /// True when this profile can never inject a fault. The network
    /// layer skips all fault bookkeeping (including RNG draws) for
    /// quiet links, so a quiet profile is exactly "no faults".
    pub fn is_quiet(&self) -> bool {
        self.loss <= 0.0
            && self.corrupt <= 0.0
            && (self.jitter_prob <= 0.0 || self.jitter_max.is_zero())
            && self.ecn_bleach <= 0.0
            && self.ecn_ce <= 0.0
    }
}

/// One scheduled link failure: down at `down_at`, optionally back up
/// at `up_at` (a link with `up_at: None` stays dead forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// Link index (ordering follows the simulation's link list).
    pub link: u32,
    /// When the link dies.
    pub down_at: Time,
    /// When it recovers, if ever. Must be later than `down_at`.
    pub up_at: Option<Time>,
}

/// A seeded, fully deterministic fault schedule for a whole run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for all stochastic faults. Each link derives its own
    /// stream from this via [`FaultPlan::rng_for`].
    pub seed: u64,
    /// Profile applied to links without an override.
    pub default_profile: LinkFaultProfile,
    /// Per-link profile overrides `(link, profile)`; the last matching
    /// entry wins.
    pub overrides: Vec<(u32, LinkFaultProfile)>,
    /// Timed link down/up events.
    pub flaps: Vec<LinkFlap>,
    /// How long after a link state change routing keeps using stale
    /// tables before reconverging (models failure-detection latency;
    /// zero means reconvergence in the same event instant).
    pub detection_delay: Time,
}

impl FaultPlan {
    /// A plan that injects nothing: quiet profiles, no flaps.
    /// Installing it must leave a run bit-identical to no plan at all.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_profile: LinkFaultProfile::NONE,
            overrides: Vec::new(),
            flaps: Vec::new(),
            detection_delay: Time::ZERO,
        }
    }

    /// Uniform Bernoulli loss at `rate` on every link.
    pub fn uniform_loss(seed: u64, rate: f64) -> Self {
        FaultPlan {
            default_profile: LinkFaultProfile::loss(rate),
            ..FaultPlan::quiet(seed)
        }
    }

    /// Add a flap (builder style).
    pub fn with_flap(mut self, flap: LinkFlap) -> Self {
        self.flaps.push(flap);
        self
    }

    /// Override one link's profile (builder style).
    pub fn with_profile(mut self, link: u32, profile: LinkFaultProfile) -> Self {
        self.overrides.push((link, profile));
        self
    }

    /// Set the routing failure-detection delay (builder style).
    pub fn with_detection_delay(mut self, delay: Time) -> Self {
        self.detection_delay = delay;
        self
    }

    /// The profile in force on `link`.
    pub fn profile_for(&self, link: u32) -> LinkFaultProfile {
        self.overrides
            .iter()
            .rev()
            .find(|(l, _)| *l == link)
            .map(|&(_, p)| p)
            .unwrap_or(self.default_profile)
    }

    /// The isolated random stream for `link`'s stochastic faults.
    pub fn rng_for(&self, link: u32) -> Rng {
        Rng::stream(self.seed, u64::from(link))
    }

    /// True when the plan can never inject anything: every effective
    /// profile is quiet and there are no flaps.
    pub fn is_quiet(&self) -> bool {
        self.flaps.is_empty()
            && self.default_profile.is_quiet()
            && self.overrides.iter().all(|(_, p)| p.is_quiet())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(FaultPlan::quiet(1).is_quiet());
        assert!(LinkFaultProfile::NONE.is_quiet());
        // Jitter with zero bound cannot change anything → still quiet.
        let p = LinkFaultProfile {
            jitter_prob: 1.0,
            ..LinkFaultProfile::NONE
        };
        assert!(p.is_quiet());
    }

    #[test]
    fn ecn_mangling_is_not_quiet() {
        let bleach = LinkFaultProfile {
            ecn_bleach: 0.5,
            ..LinkFaultProfile::NONE
        };
        assert!(!bleach.is_quiet());
        let spray = LinkFaultProfile {
            ecn_ce: 1.0,
            ..LinkFaultProfile::NONE
        };
        assert!(!spray.is_quiet());
    }

    #[test]
    fn loss_plan_is_not_quiet() {
        assert!(!FaultPlan::uniform_loss(1, 0.01).is_quiet());
        let with_flap = FaultPlan::quiet(1).with_flap(LinkFlap {
            link: 0,
            down_at: Time::from_ms(1),
            up_at: None,
        });
        assert!(!with_flap.is_quiet());
    }

    #[test]
    fn overrides_last_match_wins() {
        let plan = FaultPlan::quiet(1)
            .with_profile(3, LinkFaultProfile::loss(0.1))
            .with_profile(3, LinkFaultProfile::loss(0.5));
        let p = plan.profile_for(3);
        assert_eq!(p.loss, 0.5);
        assert_eq!(plan.profile_for(2), LinkFaultProfile::NONE);
    }

    #[test]
    fn per_link_rngs_are_isolated_and_stable() {
        let plan = FaultPlan::uniform_loss(42, 0.5);
        let mut a = plan.rng_for(3);
        let mut b = plan.rng_for(3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = plan.rng_for(4);
        let mut a2 = plan.rng_for(3);
        let same = (0..64).filter(|_| a2.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0, "adjacent links must have decorrelated streams");
    }
}
