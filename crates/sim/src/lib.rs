//! `tcn-sim` — deterministic discrete-event simulation substrate.
//!
//! This crate is the foundation of the TCN reproduction. It provides the
//! pieces every other crate builds on:
//!
//! * [`Time`] — an integer **picosecond** clock. All standard datacenter
//!   link rates (1/10/40/100 Gbps) have exact integer per-byte transmission
//!   times in picoseconds, so event ordering never suffers floating-point
//!   drift and simulations are bit-for-bit reproducible.
//! * [`Rate`] — link/drain rates in bits per second, with exact
//!   transmission-time arithmetic.
//! * [`EventQueue`] — a monotonic future-event list with a total order
//!   (time, insertion sequence) so same-timestamp events fire in a
//!   deterministic order. Internally a calendar queue (bucketed near
//!   horizon + sorted overflow); [`HeapEventQueue`] is the plain binary
//!   heap it is differentially tested (and benchmarked) against.
//! * [`Rng`] — a self-contained xoshiro256** generator. We deliberately do
//!   not depend on the `rand` crate for simulation draws so results cannot
//!   change under us when `rand` revises its algorithms.
//! * [`Ewma`] — the exponentially weighted moving average used by the
//!   departure-rate meter (paper Algorithm 1), MQ-ECN and DCTCP.
//! * [`FaultPlan`] — seeded, deterministic fault-injection schedules
//!   (loss, corruption, jitter, link flaps) with per-link RNG stream
//!   isolation, threaded through the network layer.
//! * [`SimBuilder`] — fluent construction of an engine with a
//!   `tcn_telemetry` bus installed: sampled event-loop ticks, and an
//!   epoch reset on `clear()` so reused engines never report stale
//!   series.
//!
//! The engine is intentionally single-threaded *per simulation*: the
//! simulated systems are CPU-bound state machines, and a deterministic
//! serial event loop is both faster and easier to validate than a
//! parallel one. Throughput parallelism lives a layer up — independent
//! simulation cells (each owning its own `EventQueue` and `Rng` streams)
//! run concurrently and merge in canonical order (see
//! `tcn-experiments::runner`), so results are identical at any thread
//! count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod engine;
pub mod ewma;
pub mod fault;
pub mod rng;
pub mod time;

pub use builder::SimBuilder;
pub use engine::{EventEntry, EventQueue, HeapEventQueue};
pub use ewma::Ewma;
pub use fault::{FaultKind, FaultPlan, LinkFaultProfile, LinkFlap};
pub use rng::Rng;
pub use time::{Rate, Time};
