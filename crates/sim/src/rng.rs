//! Deterministic random numbers for simulations.
//!
//! This is xoshiro256** 1.0 (Blackman & Vigna) seeded through SplitMix64,
//! implemented in ~60 lines so that the *simulation* results depend only on
//! this crate — never on the evolution of an external RNG crate. The
//! statistical quality is far beyond what traffic generation needs, and the
//! generator is `Clone` so experiments can fork identical streams.

use crate::time::Time;

/// SplitMix64 step; used to expand a 64-bit seed into the 256-bit state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform and in every build.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x1;
        }
        Rng { s }
    }

    /// Derive an independent child generator; used to give each traffic
    /// source its own stream so adding a source does not perturb others.
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A numbered, stateless sub-stream of a 64-bit seed: equal
    /// `(seed, stream)` pairs always yield the same generator, and
    /// distinct stream ids decorrelate even for adjacent seeds.
    ///
    /// Unlike [`Rng::fork`] this consumes no parent state, so stream
    /// `k` is stable no matter how many other streams were created —
    /// the property fault injection needs for per-link RNG isolation
    /// (drawing loss on one link must not perturb another link's draws).
    pub fn stream(seed: u64, stream: u64) -> Rng {
        let mut sm = stream;
        let salt = splitmix64(&mut sm);
        Rng::new(seed ^ salt)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and fast.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `\[0, 1\]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    /// The workhorse of Poisson arrival processes.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - U in (0, 1] avoids ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Exponential inter-arrival gap with the given mean, as simulated
    /// time (rounded to the picosecond).
    pub fn exp_time(&mut self, mean: Time) -> Time {
        Time::from_secs_f64(self.exp(mean.as_secs_f64()))
    }

    /// Pick a uniformly random element index different from `exclude`
    /// (used for "choose a destination host other than the source").
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn pick_other(&mut self, n: u64, exclude: u64) -> u64 {
        assert!(n >= 2, "pick_other needs at least two choices");
        let r = self.gen_range(n - 1);
        if r >= exclude {
            r + 1
        } else {
            r
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_reference_values() {
        // Regression pin: if the algorithm or seeding changes, every
        // experiment changes — this test makes that loud.
        let mut r = Rng::new(0xDEADBEEF);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::new(0xDEADBEEF);
        let vals2: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(vals, vals2);
        // All four should be distinct with overwhelming probability.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(vals[i], vals[j]);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Rng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let emp = sum / n as f64;
        assert!(
            (emp - mean).abs() / mean < 0.02,
            "empirical mean {emp} too far from {mean}"
        );
    }

    #[test]
    fn exp_time_mean_close() {
        let mut r = Rng::new(17);
        let mean = Time::from_us(100);
        let n = 100_000u64;
        let total: Time = (0..n).map(|_| r.exp_time(mean)).sum();
        let emp_us = total.as_us_f64() / n as f64;
        assert!((emp_us - 100.0).abs() < 2.0, "mean {emp_us}us");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(19);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn pick_other_never_returns_excluded() {
        let mut r = Rng::new(23);
        for _ in 0..10_000 {
            let v = r.pick_other(9, 3);
            assert!(v < 9);
            assert_ne!(v, 3);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(29);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn numbered_streams_are_stable_and_independent() {
        // Stability: stream k depends only on (seed, k).
        let mut a = Rng::stream(7, 3);
        let mut b = Rng::stream(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Independence: adjacent stream ids do not correlate.
        let mut c = Rng::stream(7, 4);
        let mut a2 = Rng::stream(7, 3);
        let same = (0..100).filter(|_| a2.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(31);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
