//! Simulation time and link-rate units.
//!
//! [`Time`] is a count of **picoseconds** stored in a `u64`. It is used for
//! both instants (time since simulation start) and durations; the network
//! domain constantly mixes the two (`deadline = now + tx_time`) and keeping
//! one transparent type avoids a wall of conversion noise without
//! sacrificing safety — all arithmetic is checked in debug builds.
//!
//! Why picoseconds: a byte takes exactly 8 000 ps at 1 Gbps, 800 ps at
//! 10 Gbps, 200 ps at 40 Gbps and 80 ps at 100 Gbps — all integers — so
//! serialization deadlines are exact and event order is reproducible.
//! `u64::MAX` picoseconds is ≈ 213 days, far beyond any experiment.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// A point in simulated time, or a span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The origin of simulated time (also the zero duration).
    pub const ZERO: Time = Time(0);
    /// The farthest representable future; used as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * PS_PER_MS)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * PS_PER_SEC)
    }

    /// Construct from fractional seconds (rounded to the nearest
    /// picosecond). Handy for "0.01 s" style experiment scripts.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative time");
        Time((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / PS_PER_US
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_ms(self) -> u64 {
        self.0 / PS_PER_MS
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero. Used for
    /// "time remaining" computations that may have already expired.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating addition; overflow clamps to [`Time::MAX`]. Used when
    /// extending an "infinite" deadline must stay infinite.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Integer multiplication by a dimensionless factor.
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> Time {
        Time(self.0.saturating_mul(k))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this is the zero instant / empty duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("Time overflow")) // lint:allow(no-unwrap): clock overflow must abort; silent wraparound would corrupt event ordering
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("Time underflow")) // lint:allow(no-unwrap): negative time is unrepresentable; underflow must abort
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, k: u64) -> Time {
        Time(self.0.checked_mul(k).expect("Time overflow")) // lint:allow(no-unwrap): clock overflow must abort; silent wraparound would corrupt event ordering
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, k: u64) -> Time {
        Time(self.0 / k)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Time {
    /// Renders with the largest unit that keeps three significant integer
    /// digits readable, e.g. `152.4us`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < PS_PER_NS {
            write!(f, "{ps}ps")
        } else if ps < PS_PER_US {
            write!(f, "{:.1}ns", ps as f64 / PS_PER_NS as f64)
        } else if ps < PS_PER_MS {
            write!(f, "{:.1}us", ps as f64 / PS_PER_US as f64)
        } else if ps < PS_PER_SEC {
            write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
        } else {
            write!(f, "{:.6}s", ps as f64 / PS_PER_SEC as f64)
        }
    }
}

/// A data rate in bits per second.
///
/// The conversions to/from time use 128-bit intermediates so that large
/// byte counts (multi-gigabyte transfers) cannot overflow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Rate(pub u64);

impl Rate {
    /// A zero rate (a stopped drain).
    pub const ZERO: Rate = Rate(0);

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Construct from kilobits per second (10^3 b/s).
    #[inline]
    pub const fn from_kbps(kbps: u64) -> Self {
        Rate(kbps * 1_000)
    }

    /// Construct from megabits per second (10^6 b/s).
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Construct from gigabits per second (10^9 b/s).
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Rate(gbps * 1_000_000_000)
    }

    /// Bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate in Gb/s as a float (for reporting).
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Rate in Mb/s as a float (for reporting).
    #[inline]
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` bytes at this rate, rounded up to the
    /// next picosecond so a transmission never finishes early.
    ///
    /// # Panics
    /// Panics if the rate is zero.
    #[inline]
    pub fn tx_time(self, bytes: u64) -> Time {
        assert!(self.0 > 0, "tx_time at zero rate");
        let bits = bytes as u128 * 8;
        let ps = (bits * PS_PER_SEC as u128).div_ceil(self.0 as u128);
        Time(u64::try_from(ps).expect("tx_time overflow")) // lint:allow(no-unwrap): a tx time beyond u64 picoseconds is a config error; abort loudly
    }

    /// Bytes fully serialized in `dur` at this rate (truncating).
    #[inline]
    pub fn bytes_in(self, dur: Time) -> u64 {
        let bits = self.0 as u128 * dur.0 as u128 / PS_PER_SEC as u128;
        u64::try_from(bits / 8).expect("bytes_in overflow") // lint:allow(no-unwrap): byte count beyond u64 is a config error; abort loudly
    }

    /// Scale the rate by a rational factor `num/den` (used by weighted
    /// schedulers to express per-queue shares).
    #[inline]
    pub fn scale(self, num: u64, den: u64) -> Rate {
        assert!(den > 0, "scale by zero denominator");
        Rate((self.0 as u128 * num as u128 / den as u128) as u64)
    }

    /// The rate that drains `bytes` in `dur`. Returns [`Rate::ZERO`] for a
    /// zero duration (callers treat that as "no sample").
    #[inline]
    pub fn from_bytes_over(bytes: u64, dur: Time) -> Rate {
        if dur.is_zero() {
            return Rate::ZERO;
        }
        let bps = bytes as u128 * 8 * PS_PER_SEC as u128 / dur.0 as u128;
        Rate(u64::try_from(bps).unwrap_or(u64::MAX))
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.0;
        if bps >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", bps as f64 / 1e9)
        } else if bps >= 1_000_000 {
            write!(f, "{:.2}Mbps", bps as f64 / 1e6)
        } else if bps >= 1_000 {
            write!(f, "{:.2}Kbps", bps as f64 / 1e3)
        } else {
            write!(f, "{bps}bps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
        assert_eq!(Time::from_secs_f64(0.5), Time::from_ms(500));
    }

    #[test]
    fn arithmetic_basics() {
        let a = Time::from_us(3);
        let b = Time::from_us(2);
        assert_eq!(a + b, Time::from_us(5));
        assert_eq!(a - b, Time::from_us(1));
        assert_eq!(a * 2, Time::from_us(6));
        assert_eq!(a / 3, Time::from_us(1));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "Time underflow")]
    fn underflow_panics() {
        let _ = Time::from_us(1) - Time::from_us(2);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(Time::MAX.saturating_add(Time::from_us(1)), Time::MAX);
        assert_eq!(
            Time::from_us(1).saturating_add(Time::from_us(2)),
            Time::from_us(3)
        );
    }

    #[test]
    fn tx_time_exact_for_standard_rates() {
        // 1500 B at 1 Gbps = 12 us exactly.
        assert_eq!(Rate::from_gbps(1).tx_time(1500), Time::from_us(12));
        // 1500 B at 10 Gbps = 1.2 us exactly.
        assert_eq!(Rate::from_gbps(10).tx_time(1500), Time::from_ns(1200));
        // 64 B at 40 Gbps = 12.8 ns exactly.
        assert_eq!(Rate::from_gbps(40).tx_time(64), Time::from_ps(12_800));
        // 64 B at 100 Gbps = 5.12 ns exactly.
        assert_eq!(Rate::from_gbps(100).tx_time(64), Time::from_ps(5_120));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666... s → rounds up.
        let t = Rate::from_bps(3).tx_time(1);
        assert_eq!(t.0, (8 * PS_PER_SEC).div_ceil(3));
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let r = Rate::from_gbps(10);
        for bytes in [64u64, 1500, 9000, 1_000_000] {
            let t = r.tx_time(bytes);
            assert_eq!(r.bytes_in(t), bytes);
        }
    }

    #[test]
    fn rate_from_bytes_over() {
        // 125 KB over 100 us = 10 Gbps.
        let r = Rate::from_bytes_over(125_000, Time::from_us(100));
        assert_eq!(r, Rate::from_gbps(10));
        assert_eq!(Rate::from_bytes_over(1000, Time::ZERO), Rate::ZERO);
    }

    #[test]
    fn rate_scale() {
        assert_eq!(Rate::from_gbps(10).scale(1, 2), Rate::from_gbps(5));
        assert_eq!(Rate::from_gbps(1).scale(250, 1000), Rate::from_mbps(250));
    }

    #[test]
    fn large_transfer_no_overflow() {
        // 100 GB at 100 Gbps = 8 s; must not overflow the intermediates.
        let r = Rate::from_gbps(100);
        let t = r.tx_time(100_000_000_000);
        assert_eq!(t, Time::from_secs(8));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Time::from_us(152).to_string(), "152.0us");
        assert_eq!(Time::ZERO.to_string(), "0s");
        assert_eq!(Rate::from_gbps(10).to_string(), "10.00Gbps");
        assert_eq!(Rate::from_mbps(250).to_string(), "250.00Mbps");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_us(1), Time::from_us(2), Time::from_us(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_us(6));
    }
}
