//! Differential test: the calendar-queue `EventQueue` must pop the
//! *identical* `(time, seq, event)` stream as the plain binary-heap
//! `HeapEventQueue` oracle under a long randomized workload of mixed
//! schedules, pops and clears — the proof obligation behind swapping the
//! engine's future-event list implementation.

use tcn_sim::{EventQueue, HeapEventQueue, Rng, Time};

/// Drive both queues through `ops` randomized operations and assert the
/// pop streams match step by step. The time distribution is shaped like
/// a real DES run: mostly near-horizon offsets (within the calendar
/// ring), some same-instant bursts (exercising the FIFO tie-break), a
/// far-future tail (exercising the overflow tier and its migration), and
/// occasional `Time::MAX` saturation.
fn differential_run(seed: u64, ops: usize, clear_period: Option<u64>) {
    let mut cal: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut rng = Rng::new(seed);
    let mut payload = 0u64;

    for op in 0..ops as u64 {
        if let Some(p) = clear_period {
            if op > 0 && op % p == 0 {
                cal.clear();
                heap.clear();
            }
        }
        let roll = rng.gen_range(100);
        if roll < 55 {
            // Schedule. Offsets: 60% near (≤ ~4 µs), 20% same-instant,
            // 15% mid (≤ ~0.5 ms), 4% far (≤ ~50 ms), 1% saturating.
            let shape = rng.gen_range(100);
            let at = if shape < 60 {
                cal.now().saturating_add(Time::from_ps(rng.gen_range(1 << 22)))
            } else if shape < 80 {
                cal.now()
            } else if shape < 95 {
                cal.now().saturating_add(Time::from_ps(rng.gen_range(1 << 29)))
            } else if shape < 99 {
                cal.now().saturating_add(Time::from_ps(rng.gen_range(1 << 36)))
            } else {
                Time::MAX
            };
            payload += 1;
            cal.schedule_at(at, payload);
            heap.schedule_at(at, payload);
        } else {
            // Pop and compare the full entry.
            let a = cal.pop();
            let b = heap.pop();
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.at, y.at, "pop time diverged at op {op}");
                    assert_eq!(x.seq, y.seq, "pop seq diverged at op {op}");
                    assert_eq!(x.event, y.event, "pop payload diverged at op {op}");
                }
                (a, b) => panic!(
                    "emptiness diverged at op {op}: calendar {:?} vs heap {:?}",
                    a.map(|e| e.event),
                    b.map(|e| e.event)
                ),
            }
        }
        assert_eq!(cal.len(), heap.len(), "len diverged at op {op}");
    }

    // Drain both completely: every remaining entry must match too.
    loop {
        match (cal.pop(), heap.pop()) {
            (None, None) => break,
            (Some(x), Some(y)) => {
                assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
            }
            _ => panic!("drain length diverged"),
        }
    }
}

#[test]
fn million_mixed_ops_identical_pop_order() {
    // The headline differential: ≥ 10⁶ mixed schedule/pop/clear ops.
    differential_run(0xC0FFEE, 1_000_000, Some(200_000));
}

#[test]
fn multiple_seeds_without_clear() {
    for seed in 1..=4u64 {
        differential_run(seed, 60_000, None);
    }
}

#[test]
fn clear_heavy_workload() {
    // Frequent clears: sequence numbering restarts constantly, so any
    // clear-state desync between the implementations surfaces fast.
    differential_run(7, 120_000, Some(1_000));
}

/// The batched-drain differential: the same shaped workload as
/// `differential_run`, but popping through `pop_batch_into` on both
/// implementations, with a slice of schedules going through the
/// reserve/fill path. Every batch must match entry-for-entry, and the
/// merged streams must equal each other.
fn batch_differential_run(seed: u64, ops: usize, clear_period: Option<u64>) {
    let mut cal: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut rng = Rng::new(seed);
    let mut payload = 0u64;
    let mut held: Vec<(u64, Time)> = Vec::new(); // (reserved seq, deadline)
    let mut cal_batch = Vec::new();
    let mut heap_batch = Vec::new();

    for op in 0..ops as u64 {
        if let Some(p) = clear_period {
            if op > 0 && op % p == 0 {
                cal.clear();
                heap.clear();
                held.clear(); // reservations die with the epoch
            }
        }
        let roll = rng.gen_range(100);
        if roll < 45 {
            let shape = rng.gen_range(100);
            let at = if shape < 60 {
                cal.now().saturating_add(Time::from_ps(rng.gen_range(1 << 22)))
            } else if shape < 80 {
                cal.now()
            } else if shape < 96 {
                cal.now().saturating_add(Time::from_ps(rng.gen_range(1 << 29)))
            } else {
                cal.now().saturating_add(Time::from_ps(rng.gen_range(1 << 36)))
            };
            payload += 1;
            cal.schedule_at(at, payload);
            heap.schedule_at(at, payload);
        } else if roll < 55 {
            // Reserve now, fill later (the port-coalescing pattern).
            let seq = cal.reserve_seq();
            assert_eq!(seq, heap.reserve_seq(), "seq allocation diverged at op {op}");
            let deadline = cal
                .now()
                .saturating_add(Time::from_ps(rng.gen_range(1 << 24) + 1));
            if rng.gen_range(10) < 8 {
                held.push((seq, deadline));
            } // else: abandoned reservation — a permanent gap
        } else {
            // Fill any reservations whose deadline is still in the
            // future relative to both clocks, then batch-pop.
            while let Some((seq, at)) = held.pop() {
                if at >= cal.now() {
                    payload += 1;
                    cal.schedule_at_reserved(at, seq, payload);
                    heap.schedule_at_reserved(at, seq, payload);
                }
            }
            let na = cal.pop_batch_into(&mut cal_batch);
            let nb = heap.pop_batch_into(&mut heap_batch);
            assert_eq!(na, nb, "batch size diverged at op {op}");
            for (x, y) in cal_batch.iter().zip(heap_batch.iter()) {
                assert_eq!(
                    (x.at, x.seq, x.event),
                    (y.at, y.seq, y.event),
                    "batch entry diverged at op {op}"
                );
            }
            // Stale reservations (deadline now in the past) are dropped:
            // both queues skipped them identically, so seq gaps agree.
        }
        assert_eq!(cal.len(), heap.len(), "len diverged at op {op}");
        assert_eq!(cal.now(), heap.now(), "clock diverged at op {op}");
    }

    loop {
        let na = cal.pop_batch_into(&mut cal_batch);
        let nb = heap.pop_batch_into(&mut heap_batch);
        assert_eq!(na, nb, "drain batch size diverged");
        if na == 0 {
            break;
        }
        for (x, y) in cal_batch.iter().zip(heap_batch.iter()) {
            assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
        }
    }
}

#[test]
fn batched_drain_matches_oracle_across_seeds() {
    for seed in 0xBA7C4..0xBA7C4 + 4 {
        batch_differential_run(seed, 60_000, None);
    }
}

#[test]
fn batched_drain_with_clears_matches_oracle() {
    batch_differential_run(0xD15BA7C4, 200_000, Some(20_000));
}

#[test]
fn overflow_heavy_workload() {
    // Bias the schedule far beyond the ring horizon so the overflow
    // tier and its migration dominate.
    let mut cal: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut rng = Rng::new(99);
    for i in 0..50_000u64 {
        if rng.gen_range(3) < 2 {
            // ~2/3 schedules far out (up to ~1.1 s ahead).
            let at = cal.now().saturating_add(Time::from_ps(rng.gen_range(1 << 40)));
            cal.schedule_at(at, i);
            heap.schedule_at(at, i);
        } else {
            match (cal.pop(), heap.pop()) {
                (None, None) => {}
                (Some(x), Some(y)) => assert_eq!((x.at, x.seq), (y.at, y.seq)),
                _ => panic!("emptiness diverged"),
            }
        }
    }
    loop {
        match (cal.pop(), heap.pop()) {
            (None, None) => break,
            (Some(x), Some(y)) => assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event)),
            _ => panic!("drain diverged"),
        }
    }
}
