//! Empirical distributions for the latency figures (Fig. 5b plots RTT
//! CDFs of four schemes).

use crate::summary::{mean, percentile};

/// An empirical distribution over f64 samples.
#[derive(Debug, Default, Clone)]
pub struct EmpiricalDist {
    samples: Vec<f64>,
}

impl EmpiricalDist {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// From existing samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        EmpiricalDist { samples }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        mean(&self.samples)
    }

    /// Percentile (0–100).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.samples, p)
    }

    /// CDF evaluated at `x`: fraction of samples ≤ `x`.
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.iter().filter(|&&s| s <= x).count();
        n as f64 / self.samples.len() as f64
    }

    /// `n` evenly spaced CDF points `(value, cumulative fraction)` for
    /// plotting (Fig. 5b style).
    pub fn cdf_points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        if self.samples.is_empty() {
            return Vec::new();
        }
        let mut v = self.samples.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        (0..n)
            .map(|i| {
                let frac = i as f64 / (n - 1) as f64;
                let idx = ((v.len() - 1) as f64 * frac).round() as usize;
                (v[idx], (idx + 1) as f64 / v.len() as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_at_counts_fraction() {
        let d = EmpiricalDist::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.cdf_at(0.5), 0.0);
        assert_eq!(d.cdf_at(2.0), 0.5);
        assert_eq!(d.cdf_at(10.0), 1.0);
    }

    #[test]
    fn stats_delegate() {
        let mut d = EmpiricalDist::new();
        for i in 1..=100 {
            d.push(f64::from(i));
        }
        assert_eq!(d.len(), 100);
        assert_eq!(d.mean(), 50.5);
        assert!((d.percentile(99.0) - 99.01).abs() < 0.01);
    }

    #[test]
    fn cdf_points_monotone() {
        let d = EmpiricalDist::from_samples((0..1000).map(f64::from).collect());
        let pts = d.cdf_points(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_dist_safe() {
        let d = EmpiricalDist::new();
        assert!(d.is_empty());
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.cdf_at(1.0), 0.0);
        assert!(d.cdf_points(5).is_empty());
    }
}
