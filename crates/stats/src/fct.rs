//! Flow-completion-time breakdowns, bucketed exactly as the paper's
//! evaluation: overall / small (0, 100 KB] / large (10 MB, ∞), with
//! averages everywhere and the 99th percentile for small flows (§6
//! "Performance metric"). Timeout counts per bucket back the paper's
//! tail-latency explanations (§6.2.1).

use tcn_net::FctRecord;
use tcn_sim::Time;

use crate::summary::{mean, percentile};

/// The paper's flow-size classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// (0, 100 KB].
    Small,
    /// (100 KB, 10 MB].
    Medium,
    /// (10 MB, ∞).
    Large,
}

impl SizeClass {
    /// Classify a flow size in bytes.
    pub fn of(size: u64) -> SizeClass {
        if size <= 100_000 {
            SizeClass::Small
        } else if size <= 10_000_000 {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }
}

/// FCT statistics for one scheme/load cell of a paper figure.
#[derive(Debug, Clone, Copy, Default)]
pub struct FctBreakdown {
    /// Completed flows.
    pub count: usize,
    /// Average FCT over all flows (µs).
    pub overall_avg_us: f64,
    /// Average FCT of small flows (µs).
    pub small_avg_us: f64,
    /// 99th-percentile FCT of small flows (µs).
    pub small_p99_us: f64,
    /// Average FCT of medium flows (µs).
    pub medium_avg_us: f64,
    /// Average FCT of large flows (µs).
    pub large_avg_us: f64,
    /// Small / medium / large flow counts.
    pub small_count: usize,
    /// Medium flow count.
    pub medium_count: usize,
    /// Large flow count.
    pub large_count: usize,
    /// RTO expiries suffered by small flows (the §6.2.1 explanation of
    /// tail FCT).
    pub small_timeouts: u64,
    /// RTO expiries across all flows.
    pub total_timeouts: u64,
}

impl FctBreakdown {
    /// Compute the breakdown from completed-flow records.
    pub fn from_records(records: &[FctRecord]) -> FctBreakdown {
        let us = |t: Time| t.as_us_f64();
        let all: Vec<f64> = records.iter().map(|r| us(r.fct)).collect();
        let mut small = Vec::new();
        let mut medium = Vec::new();
        let mut large = Vec::new();
        let mut small_timeouts = 0;
        let mut total_timeouts = 0;
        for r in records {
            total_timeouts += r.timeouts;
            match SizeClass::of(r.spec.size) {
                SizeClass::Small => {
                    small.push(us(r.fct));
                    small_timeouts += r.timeouts;
                }
                SizeClass::Medium => medium.push(us(r.fct)),
                SizeClass::Large => large.push(us(r.fct)),
            }
        }
        FctBreakdown {
            count: records.len(),
            overall_avg_us: mean(&all),
            small_avg_us: mean(&small),
            small_p99_us: percentile(&small, 99.0),
            medium_avg_us: mean(&medium),
            large_avg_us: mean(&large),
            small_count: small.len(),
            medium_count: medium.len(),
            large_count: large.len(),
            small_timeouts,
            total_timeouts,
        }
    }

    /// Normalize each statistic against a baseline (the paper normalizes
    /// every figure to TCN's values: "we normalize final FCT results to
    /// the values achieved by TCN").
    pub fn normalized_to(&self, base: &FctBreakdown) -> NormalizedFct {
        let ratio = |x: f64, b: f64| if b > 0.0 { x / b } else { f64::NAN };
        NormalizedFct {
            overall_avg: ratio(self.overall_avg_us, base.overall_avg_us),
            small_avg: ratio(self.small_avg_us, base.small_avg_us),
            small_p99: ratio(self.small_p99_us, base.small_p99_us),
            large_avg: ratio(self.large_avg_us, base.large_avg_us),
        }
    }
}

/// FCT statistics as ratios to a baseline scheme.
#[derive(Debug, Clone, Copy)]
pub struct NormalizedFct {
    /// Overall average ratio.
    pub overall_avg: f64,
    /// Small-flow average ratio.
    pub small_avg: f64,
    /// Small-flow p99 ratio.
    pub small_p99: f64,
    /// Large-flow average ratio.
    pub large_avg: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcn_core::FlowId;
    use tcn_net::FlowSpec;

    fn rec(size: u64, fct_us: u64, timeouts: u64) -> FctRecord {
        let spec = FlowSpec {
            src: 0,
            dst: 1,
            size,
            start: Time::ZERO,
            service: 0,
        };
        FctRecord {
            flow: FlowId(0),
            spec,
            finish: Time::from_us(fct_us),
            fct: Time::from_us(fct_us),
            timeouts,
        }
    }

    #[test]
    fn size_classes_match_paper() {
        assert_eq!(SizeClass::of(1), SizeClass::Small);
        assert_eq!(SizeClass::of(100_000), SizeClass::Small);
        assert_eq!(SizeClass::of(100_001), SizeClass::Medium);
        assert_eq!(SizeClass::of(10_000_000), SizeClass::Medium);
        assert_eq!(SizeClass::of(10_000_001), SizeClass::Large);
    }

    #[test]
    fn breakdown_buckets_and_averages() {
        let recs = vec![
            rec(50_000, 100, 1),      // small
            rec(80_000, 300, 0),      // small
            rec(1_000_000, 5_000, 0), // medium
            rec(20_000_000, 80_000, 2), // large
        ];
        let b = FctBreakdown::from_records(&recs);
        assert_eq!(b.count, 4);
        assert_eq!(b.small_count, 2);
        assert_eq!(b.medium_count, 1);
        assert_eq!(b.large_count, 1);
        assert_eq!(b.small_avg_us, 200.0);
        assert_eq!(b.medium_avg_us, 5_000.0);
        assert_eq!(b.large_avg_us, 80_000.0);
        assert_eq!(b.small_timeouts, 1);
        assert_eq!(b.total_timeouts, 3);
        assert_eq!(b.overall_avg_us, (100.0 + 300.0 + 5_000.0 + 80_000.0) / 4.0);
    }

    #[test]
    fn p99_reflects_tail() {
        let mut recs: Vec<FctRecord> = (0..195).map(|_| rec(50_000, 100, 0)).collect();
        recs.extend((0..5).map(|_| rec(50_000, 10_000, 1))); // 2.5 % stragglers
        let b = FctBreakdown::from_records(&recs);
        assert!(b.small_p99_us > 5_000.0, "p99 {}", b.small_p99_us);
        assert!(b.small_avg_us < 400.0);
        assert_eq!(b.small_timeouts, 5);
    }

    #[test]
    fn normalization_to_baseline() {
        let base = FctBreakdown::from_records(&[rec(50_000, 100, 0), rec(20_000_000, 1_000, 0)]);
        let other = FctBreakdown::from_records(&[rec(50_000, 200, 0), rec(20_000_000, 1_000, 0)]);
        let n = other.normalized_to(&base);
        assert!((n.small_avg - 2.0).abs() < 1e-9);
        assert!((n.large_avg - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_records() {
        let b = FctBreakdown::from_records(&[]);
        assert_eq!(b.count, 0);
        assert_eq!(b.overall_avg_us, 0.0);
    }
}
