//! `tcn-stats` — the measurements every figure of the paper reports.
//!
//! * [`percentile`] / [`summary`] — order statistics over samples;
//! * [`fct`] — flow-completion-time breakdowns by flow size exactly as
//!   the paper buckets them: *small* = (0, 100 KB], *large* =
//!   (10 MB, ∞), with average and 99th-percentile statistics (§6
//!   "Performance metric");
//! * [`series`] — time series for occupancy traces (Fig. 3), rate
//!   estimates (Fig. 2) and goodput-over-time (Figs. 1, 5a);
//! * [`dist`] — empirical CDFs for RTT distributions (Fig. 5b);
//! * [`recovery`] — retransmission/timeout/goodput accounting for the
//!   chaos (fault-injection) experiments;
//! * [`stream`] — constant-memory streaming aggregators (P² quantiles,
//!   tumbling rate windows, reservoir sampling) for unbounded telemetry
//!   streams;
//! * [`tele`] — the run-summary [`tcn_telemetry::Sink`] folding a live
//!   event stream into per-queue sojourn statistics and per-port
//!   throughput series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod fct;
pub mod recovery;
pub mod series;
pub mod stream;
pub mod summary;
pub mod tele;

pub use dist::EmpiricalDist;
pub use fct::{FctBreakdown, SizeClass};
pub use recovery::RecoverySummary;
pub use series::{GoodputTracker, TimeSeries};
pub use stream::{P2Quantile, RateWindow, Reservoir};
pub use summary::{jain_index, mean, percentile};
pub use tele::{QueueSojourn, TelemetryCounters, TelemetrySummary};
