//! Loss-recovery accounting for the chaos experiments: how much work
//! the transport had to redo (retransmissions), how it recovered
//! (timeouts vs. fast retransmits), and the goodput that survived —
//! delivered application bytes over wall-clock time, which excludes
//! retransmitted duplicates by construction.

use tcn_sim::Time;

/// Aggregate recovery counters for one run (all flows summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Application bytes delivered to receivers (each byte once).
    pub delivered_bytes: u64,
    /// Data packets re-sent below the sender's high-water mark.
    pub rtx_packets: u64,
    /// Payload bytes carried by those retransmissions.
    pub rtx_bytes: u64,
    /// RTO expiries across all senders.
    pub timeouts: u64,
    /// Fast retransmits (triple-dupack recoveries) across all senders.
    pub fast_retransmits: u64,
    /// Wall-clock span of the run (finish of the last flow).
    pub elapsed: Time,
}

impl RecoverySummary {
    /// Goodput in bits per second: delivered (not retransmitted) bytes
    /// over the elapsed span. Zero when no time has passed.
    pub fn goodput_bps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.delivered_bytes as f64 * 8.0 / secs
    }

    /// Retransmitted fraction of all payload bytes put on the wire:
    /// `rtx / (delivered + rtx)`. Zero for a clean run.
    pub fn rtx_fraction(&self) -> f64 {
        let total = self.delivered_bytes + self.rtx_bytes;
        if total == 0 {
            return 0.0;
        }
        self.rtx_bytes as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_excludes_retransmissions() {
        let s = RecoverySummary {
            delivered_bytes: 1_000_000,
            rtx_packets: 10,
            rtx_bytes: 14_600,
            timeouts: 1,
            fast_retransmits: 2,
            elapsed: Time::from_ms(100),
        };
        // 1 MB over 100 ms = 80 Mbps, regardless of rtx bytes.
        assert!((s.goodput_bps() - 80e6).abs() < 1.0);
        let f = s.rtx_fraction();
        assert!(f > 0.0 && f < 0.02, "rtx fraction {f}");
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = RecoverySummary::default();
        assert_eq!(s.goodput_bps(), 0.0);
        assert_eq!(s.rtx_fraction(), 0.0);
    }
}
