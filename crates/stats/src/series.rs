//! Time series for the paper's trace figures: buffer occupancy vs time
//! (Fig. 3), estimated rate vs time (Fig. 2), goodput vs time
//! (Figs. 1, 5a).

use tcn_sim::Time;

/// A `(time, value)` series with helpers for the trace figures.
#[derive(Debug, Default, Clone)]
pub struct TimeSeries {
    points: Vec<(Time, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Times must be non-decreasing.
    ///
    /// # Panics
    /// Panics if `t` precedes the last sample.
    pub fn push(&mut self, t: Time, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be monotonic");
        }
        self.points.push((t, v));
    }

    /// All samples.
    pub fn points(&self) -> &[(Time, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum value (the Fig. 3 "peak buffer occupancy"); 0 if empty.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Mean value over samples in `[from, to)`; 0 if none.
    pub fn mean_in(&self, from: Time, to: Time) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// First time the value reaches within `tol` (relative) of `target`
    /// and stays there for every subsequent sample — the Fig. 2
    /// "convergence time" metric.
    pub fn converged_at(&self, target: f64, tol: f64) -> Option<Time> {
        let ok = |v: f64| (v - target).abs() <= tol * target.abs();
        let mut candidate = None;
        for &(t, v) in &self.points {
            if ok(v) {
                candidate.get_or_insert(t);
            } else {
                candidate = None;
            }
        }
        candidate
    }
}

/// Goodput over sliding windows from cumulative delivered-byte samples
/// (Figs. 1 and 5a report per-service goodput versus time).
#[derive(Debug, Default, Clone)]
pub struct GoodputTracker {
    samples: Vec<(Time, u64)>,
}

impl GoodputTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the cumulative bytes delivered as of `t`.
    ///
    /// # Panics
    /// Panics if time or the byte counter goes backwards.
    pub fn record(&mut self, t: Time, cumulative_bytes: u64) {
        if let Some(&(lt, lb)) = self.samples.last() {
            assert!(t >= lt, "time went backwards");
            assert!(cumulative_bytes >= lb, "byte counter went backwards");
        }
        self.samples.push((t, cumulative_bytes));
    }

    /// Goodput in bits/s between consecutive samples, as a series
    /// stamped at each window's end.
    pub fn goodput_series(&self) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for w in self.samples.windows(2) {
            let (t0, b0) = w[0];
            let (t1, b1) = w[1];
            let dt = (t1 - t0).as_secs_f64();
            if dt > 0.0 {
                ts.push(t1, (b1 - b0) as f64 * 8.0 / dt);
            }
        }
        ts
    }

    /// Average goodput in bits/s over `[from, to]`, from the nearest
    /// enclosing samples; 0 if the range is empty.
    pub fn average_bps(&self, from: Time, to: Time) -> f64 {
        let at = |t: Time| -> Option<u64> {
            // Latest sample at or before t.
            self.samples
                .iter()
                .rev()
                .find(|&&(st, _)| st <= t)
                .map(|&(_, b)| b)
        };
        match (at(from), at(to)) {
            (Some(b0), Some(b1)) if to > from => {
                (b1 - b0) as f64 * 8.0 / (to - from).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_push_and_max() {
        let mut ts = TimeSeries::new();
        ts.push(Time::from_us(1), 10.0);
        ts.push(Time::from_us(2), 30.0);
        ts.push(Time::from_us(3), 20.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.max(), 30.0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn series_rejects_time_reversal() {
        let mut ts = TimeSeries::new();
        ts.push(Time::from_us(5), 1.0);
        ts.push(Time::from_us(4), 1.0);
    }

    #[test]
    fn mean_in_window() {
        let mut ts = TimeSeries::new();
        for i in 0..10u64 {
            ts.push(Time::from_us(i), i as f64);
        }
        // [2, 5): samples 2, 3, 4.
        assert_eq!(ts.mean_in(Time::from_us(2), Time::from_us(5)), 3.0);
        assert_eq!(ts.mean_in(Time::from_ms(1), Time::from_ms(2)), 0.0);
    }

    #[test]
    fn convergence_detection() {
        let mut ts = TimeSeries::new();
        // Oscillates, then settles at 5 from t = 6.
        for (i, v) in [10.0, 3.0, 8.0, 4.9, 9.0, 2.0, 5.05, 4.95, 5.0].iter().enumerate() {
            ts.push(Time::from_us(i as u64), *v);
        }
        assert_eq!(ts.converged_at(5.0, 0.05), Some(Time::from_us(6)));
        // Never converges to 100.
        assert_eq!(ts.converged_at(100.0, 0.05), None);
    }

    #[test]
    fn goodput_between_samples() {
        let mut g = GoodputTracker::new();
        g.record(Time::ZERO, 0);
        g.record(Time::from_ms(1), 125_000); // 125 KB in 1 ms = 1 Gbps
        g.record(Time::from_ms(2), 250_000);
        let s = g.goodput_series();
        assert_eq!(s.len(), 2);
        assert!((s.points()[0].1 - 1e9).abs() < 1.0);
        assert!((g.average_bps(Time::ZERO, Time::from_ms(2)) - 1e9).abs() < 1.0);
    }

    #[test]
    fn goodput_idle_period_is_zero() {
        let mut g = GoodputTracker::new();
        g.record(Time::ZERO, 1000);
        g.record(Time::from_ms(1), 1000);
        let s = g.goodput_series();
        assert_eq!(s.points()[0].1, 0.0);
    }
}
