//! Streaming aggregators: constant-memory summaries of unbounded
//! telemetry streams.
//!
//! A traced run can emit one event per packet — hundreds of millions of
//! samples on the larger sweeps — so the figure pipeline cannot afford
//! to buffer raw values and sort. The three estimators here are the
//! standard constant-space answers:
//!
//! * [`P2Quantile`] — the P² algorithm (Jain & Chlamtac, CACM 1985):
//!   dynamic quantile estimation with five markers, no stored samples;
//! * [`RateWindow`] — tumbling-window byte counters producing a rate
//!   [`TimeSeries`] (the Fig. 2 "estimated rate vs time" shape);
//! * [`Reservoir`] — Vitter's Algorithm R, a fixed-size uniform sample
//!   of the stream for when the full distribution shape is wanted
//!   (RTT CDFs, Fig. 5b) without the full data.

use tcn_sim::{Rng, Time};

use crate::series::TimeSeries;
use crate::summary::percentile;

/// Streaming estimate of a single quantile via the P² algorithm.
///
/// Holds exactly five markers regardless of stream length. The first
/// five observations are stored verbatim (and queried exactly); from
/// the sixth on, the interior markers are nudged along piecewise
/// parabolas so that marker 2 tracks the `p`-quantile.
///
/// ```
/// use tcn_stats::P2Quantile;
/// let mut q = P2Quantile::new(0.5);
/// for x in 1..=1001 {
///     q.observe(x as f64);
/// }
/// assert!((q.value() - 501.0).abs() < 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    count: u64,
    /// Marker heights (first `count` entries hold raw samples while
    /// `count < 5`).
    q: [f64; 5],
    /// Actual marker positions (1-based ranks).
    pos: [f64; 5],
    /// Desired marker positions.
    want: [f64; 5],
    /// Per-observation increment of the desired positions.
    dwant: [f64; 5],
}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `0 < p < 1`.
    ///
    /// # Panics
    /// Panics when `p` is outside `(0, 1)` or not finite.
    pub fn new(p: f64) -> Self {
        assert!(p.is_finite() && p > 0.0 && p < 1.0, "quantile {p} not in (0, 1)");
        P2Quantile {
            p,
            count: 0,
            q: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            want: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dwant: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        }
    }

    /// The quantile this estimator tracks.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations fed in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation.
    ///
    /// # Panics
    /// Panics on NaN (a NaN sample would silently poison every marker).
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        if self.count < 5 {
            self.q[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.q.sort_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        self.count += 1;

        // Locate the marker cell containing x, widening the extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            1
        } else if x >= self.q[4] {
            self.q[4] = x;
            4
        } else {
            // q[k-1] <= x < q[k]
            // x < q[4] is guaranteed above, so a cell always exists.
            (1..=4).find(|&i| x < self.q[i]).unwrap_or(4)
        };
        for i in k..5 {
            self.pos[i] += 1.0;
        }
        for i in 0..5 {
            self.want[i] += self.dwant[i];
        }

        // Nudge interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.want[i] - self.pos[i];
            if (d >= 1.0 && self.pos[i + 1] - self.pos[i] > 1.0)
                || (d <= -1.0 && self.pos[i - 1] - self.pos[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.pos[i] += d;
            }
        }
    }

    /// Piecewise-parabolic prediction of marker `i` moved by `d` ∈ {−1, 1}.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.pos;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola would break marker ordering.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate. Exact (sorted interpolation) while fewer than
    /// five observations have arrived; 0 when empty.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else if self.count < 5 {
            percentile(&self.q[..self.count as usize], self.p * 100.0)
        } else {
            self.q[2]
        }
    }
}

/// Tumbling-window rate counter: accumulate bytes, emit one rate sample
/// (bits/s) per closed window into a [`TimeSeries`].
///
/// Windows are aligned to multiples of the window width from time zero.
/// A window that closes with traffic in it is followed by at most one
/// explicit zero-rate sample before an idle gap — long idle stretches
/// are elided rather than flooding the series with zeros.
#[derive(Debug, Clone)]
pub struct RateWindow {
    window: Time,
    start: Time,
    bytes: u64,
    series: TimeSeries,
}

impl RateWindow {
    /// A counter with the given window width.
    ///
    /// # Panics
    /// Panics on a zero-width window.
    pub fn new(window: Time) -> Self {
        assert!(!window.is_zero(), "zero-width rate window");
        RateWindow {
            window,
            start: Time::ZERO,
            bytes: 0,
            series: TimeSeries::new(),
        }
    }

    /// Account `bytes` at time `t`. Times must be non-decreasing (the
    /// underlying series panics otherwise).
    pub fn record(&mut self, t: Time, bytes: u64) {
        while t >= self.start + self.window {
            let was_idle = self.bytes == 0;
            self.close_window();
            if was_idle {
                // Elide the rest of an idle gap: jump to the aligned
                // window containing t.
                let w = self.window.as_ps();
                let aligned = Time::from_ps(t.as_ps() / w * w);
                if aligned > self.start {
                    self.start = aligned;
                }
            }
        }
        self.bytes += bytes;
    }

    /// Close the in-progress window (as a full-width window) and return
    /// the finished series.
    pub fn finish(mut self) -> TimeSeries {
        if self.bytes > 0 {
            self.close_window();
        }
        self.series
    }

    /// The series of closed windows so far.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    fn close_window(&mut self) {
        let end = self.start.saturating_add(self.window);
        let bps = self.bytes as f64 * 8.0 / self.window.as_secs_f64();
        self.series.push(end, bps);
        self.start = end;
        self.bytes = 0;
    }
}

/// Fixed-size uniform sample of a stream (Vitter's Algorithm R), seeded
/// for reproducibility with the simulator's own [`Rng`].
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    buf: Vec<f64>,
    rng: Rng,
}

impl Reservoir {
    /// A reservoir holding at most `cap` samples.
    ///
    /// # Panics
    /// Panics on a zero-capacity reservoir.
    pub fn new(cap: usize, seed: u64) -> Self {
        assert!(cap > 0, "zero-capacity reservoir");
        Reservoir {
            cap,
            seen: 0,
            buf: Vec::with_capacity(cap),
            rng: Rng::new(seed),
        }
    }

    /// Offer one value to the reservoir.
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.buf.len() < self.cap {
            self.buf.push(x);
        } else {
            let j = self.rng.gen_range(self.seen);
            if (j as usize) < self.cap {
                self.buf[j as usize] = x;
            }
        }
    }

    /// The retained sample (unordered).
    pub fn samples(&self) -> &[f64] {
        &self.buf
    }

    /// Total values offered, retained or not.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seeded heavy-tailed sample: lognormal with σ = 1 (p99/p50
    /// ratio ≈ 10) via Box–Muller.
    fn heavy_tailed(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let u1 = 1.0 - rng.next_f64(); // (0, 1]
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                z.exp()
            })
            .collect()
    }

    #[test]
    fn p2_differential_vs_exact_on_heavy_tail() {
        // The satellite acceptance test: P² within 1% relative error of
        // the exact sorted quantile at p50/p95/p99 on seeded
        // heavy-tailed data.
        for seed in [1u64, 7, 42] {
            let xs = heavy_tailed(200_000, seed);
            for p in [0.50, 0.95, 0.99] {
                let mut est = P2Quantile::new(p);
                for &x in &xs {
                    est.observe(x);
                }
                let exact = percentile(&xs, p * 100.0);
                let rel = (est.value() - exact).abs() / exact;
                assert!(
                    rel <= 0.01,
                    "seed {seed} p{p}: est {} vs exact {exact} (rel {rel:.4})",
                    est.value()
                );
            }
        }
    }

    #[test]
    fn p2_exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.value(), 0.0);
        q.observe(10.0);
        assert_eq!(q.value(), 10.0);
        q.observe(20.0);
        q.observe(0.0);
        assert_eq!(q.value(), 10.0, "exact median of {{0, 10, 20}}");
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn p2_is_deterministic() {
        let xs = heavy_tailed(10_000, 3);
        let run = || {
            let mut q = P2Quantile::new(0.99);
            xs.iter().for_each(|&x| q.observe(x));
            q.value()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    #[should_panic(expected = "not in (0, 1)")]
    fn p2_rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn rate_window_basic() {
        let mut rw = RateWindow::new(Time::from_ms(1));
        // 125 000 B per 1 ms window = 1 Gbps.
        rw.record(Time::from_us(100), 62_500);
        rw.record(Time::from_us(900), 62_500);
        rw.record(Time::from_us(1_500), 125_000);
        let s = rw.finish();
        assert_eq!(s.len(), 2);
        assert!((s.points()[0].1 - 1e9).abs() < 1.0);
        assert_eq!(s.points()[0].0, Time::from_ms(1));
        assert!((s.points()[1].1 - 1e9).abs() < 1.0);
    }

    #[test]
    fn rate_window_elides_idle_gaps() {
        let mut rw = RateWindow::new(Time::from_us(10));
        rw.record(Time::from_us(5), 100);
        // A long silence, then traffic again: the series must not
        // contain thousands of zero windows.
        rw.record(Time::from_secs(1), 100);
        let s = rw.finish();
        assert!(s.len() <= 4, "idle gap flooded the series: {} points", s.len());
        assert_eq!(s.points()[0].0, Time::from_us(10));
    }

    #[test]
    fn reservoir_exact_until_full_then_uniform() {
        let mut r = Reservoir::new(100, 9);
        for i in 0..100 {
            r.push(i as f64);
        }
        assert_eq!(r.samples().len(), 100);
        assert_eq!(r.samples()[7], 7.0, "no eviction before capacity");
        for i in 100..100_000 {
            r.push(i as f64);
        }
        assert_eq!(r.samples().len(), 100);
        assert_eq!(r.seen(), 100_000);
        // A uniform sample of [0, 100k) has mean ≈ 50k; allow wide slack.
        let mean = r.samples().iter().sum::<f64>() / 100.0;
        assert!((mean - 50_000.0).abs() < 15_000.0, "mean {mean} far from uniform");
    }

    #[test]
    fn reservoir_is_seed_deterministic() {
        let fill = |seed| {
            let mut r = Reservoir::new(10, seed);
            (0..1000).for_each(|i| r.push(i as f64));
            r.samples().to_vec()
        };
        assert_eq!(fill(4), fill(4));
        assert_ne!(fill(4), fill(5), "different seeds should differ");
    }
}
