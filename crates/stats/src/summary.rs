//! Order statistics.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The `p`-th percentile (`0 ≤ p ≤ 100`) with linear interpolation
/// between closest ranks — the convention used by ns-2 analysis scripts
/// in this literature. Returns 0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)` — 1.0 for perfectly equal
/// allocations, `1/n` when one flow takes everything. Used by the
/// probabilistic-TCN fairness extension (the paper motivates RED-like
/// marking with DCQCN's "unfairness problem", §4.3).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 0.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_extremes() {
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        let skewed = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        let mid = jain_index(&[2.0, 1.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), 2.5);
        assert_eq!(percentile(&xs, 99.0), 9.9);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&xs, 50.0), 5.0);
    }

    #[test]
    fn p99_of_many() {
        let xs: Vec<f64> = (0..1000).map(f64::from).collect();
        let p99 = percentile(&xs, 99.0);
        assert!((p99 - 989.01).abs() < 0.01, "p99 {p99}");
    }

    #[test]
    fn empty_percentile_zero() {
        assert_eq!(percentile(&[], 99.0), 0.0);
    }
}
