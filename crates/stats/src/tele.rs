//! The run-summary telemetry sink: constant-memory aggregation of a
//! live event stream into the statistics the figures report.
//!
//! [`TelemetrySummary`] implements [`tcn_telemetry::Sink`] and digests
//! per-packet events as they are emitted — per-(port, queue) sojourn
//! quantiles via [`P2Quantile`], per-port throughput via [`RateWindow`]
//! feeding [`TimeSeries`], and plain counters for marks, drops and
//! congestion episodes. Like `MemorySink`, the state is behind a shared
//! handle: clone the sink before boxing it into the bus and read the
//! clone after the run.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use tcn_sim::Time;
use tcn_telemetry::{Event, Sink};

use crate::series::TimeSeries;
use crate::stream::{P2Quantile, RateWindow};

/// Sojourn statistics for one `(port, queue)` pair.
#[derive(Debug, Clone)]
pub struct QueueSojourn {
    /// Packets dequeued.
    pub dequeues: u64,
    /// Wire bytes dequeued.
    pub bytes: u64,
    /// Sum of sojourn times (ps) — exact, for mean comparison.
    pub sum_ps: u64,
    /// Largest sojourn seen (ps).
    pub max_ps: u64,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl QueueSojourn {
    fn new() -> Self {
        QueueSojourn {
            dequeues: 0,
            bytes: 0,
            sum_ps: 0,
            max_ps: 0,
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    fn observe(&mut self, bytes: u32, sojourn_ps: u64) {
        self.dequeues += 1;
        self.bytes += bytes as u64;
        self.sum_ps += sojourn_ps;
        self.max_ps = self.max_ps.max(sojourn_ps);
        let s = sojourn_ps as f64;
        self.p50.observe(s);
        self.p95.observe(s);
        self.p99.observe(s);
    }

    /// Mean sojourn (ps); 0 when no packets were dequeued.
    pub fn mean_ps(&self) -> f64 {
        if self.dequeues == 0 {
            0.0
        } else {
            self.sum_ps as f64 / self.dequeues as f64
        }
    }

    /// Streaming median sojourn estimate (ps).
    pub fn p50_ps(&self) -> f64 {
        self.p50.value()
    }

    /// Streaming 95th-percentile sojourn estimate (ps).
    pub fn p95_ps(&self) -> f64 {
        self.p95.value()
    }

    /// Streaming 99th-percentile sojourn estimate (ps).
    pub fn p99_ps(&self) -> f64 {
        self.p99.value()
    }
}

/// Plain event counters for a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryCounters {
    /// Packets admitted to queues.
    pub enqueues: u64,
    /// Packets dequeued onto the wire.
    pub dequeues: u64,
    /// Shared-buffer admission refusals.
    pub buffer_drops: u64,
    /// AQM drops (either path).
    pub aqm_drops: u64,
    /// CE marks applied by ports.
    pub marks: u64,
    /// AQM mark decisions reported (both outcomes).
    pub mark_decisions: u64,
    /// Mark decisions that marked.
    pub mark_decisions_marked: u64,
    /// Scheduler service events.
    pub sched_services: u64,
    /// ECN-driven window reductions.
    pub ecn_reduces: u64,
    /// Retransmission timeouts.
    pub rtos: u64,
    /// Fast-retransmit entries.
    pub fast_rtxs: u64,
    /// Congestion-control state transitions (phase, validation, switch).
    pub cc_transitions: u64,
}

#[derive(Default)]
struct State {
    queues: BTreeMap<(u32, u16), QueueSojourn>,
    port_rate: BTreeMap<u32, RateWindow>,
    counters: TelemetryCounters,
    rate_window: u64, // ps; 0 = disabled
}

/// A [`Sink`] that folds the event stream into run-summary statistics.
///
/// ```
/// use tcn_stats::TelemetrySummary;
/// use tcn_telemetry::{Event, Sink, Telemetry};
/// use tcn_sim::Time;
///
/// let bus = Telemetry::new();
/// let summary = TelemetrySummary::new(Time::from_ms(1));
/// bus.add_sink(Box::new(summary.handle()));
/// bus.record(&Event::Dequeue { at_ps: 10, port: 0, queue: 1, bytes: 1500, sojourn_ps: 7 });
/// let q = summary.queue(0, 1).expect("observed");
/// assert_eq!(q.dequeues, 1);
/// assert_eq!(q.max_ps, 7);
/// ```
#[derive(Clone, Default)]
pub struct TelemetrySummary {
    state: Rc<RefCell<State>>,
}

impl TelemetrySummary {
    /// A summary aggregating port throughput over `rate_window`-wide
    /// tumbling windows. Pass [`Time::ZERO`] to skip rate series.
    pub fn new(rate_window: Time) -> Self {
        let s = TelemetrySummary::default();
        s.state.borrow_mut().rate_window = rate_window.as_ps();
        s
    }

    /// A second handle onto the same state (box this one into the bus).
    pub fn handle(&self) -> TelemetrySummary {
        self.clone()
    }

    /// Sojourn statistics for one `(port, queue)`; `None` if that queue
    /// never dequeued a packet.
    pub fn queue(&self, port: u32, queue: u16) -> Option<QueueSojourn> {
        self.state.borrow().queues.get(&(port, queue)).cloned()
    }

    /// Every `(port, queue)` with statistics, in index order.
    pub fn queues(&self) -> Vec<((u32, u16), QueueSojourn)> {
        self.state
            .borrow()
            .queues
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Throughput series for one port (closed windows so far).
    pub fn port_rate_series(&self, port: u32) -> Option<TimeSeries> {
        self.state
            .borrow()
            .port_rate
            .get(&port)
            .map(|rw| rw.series().clone())
    }

    /// The run's event counters.
    pub fn counters(&self) -> TelemetryCounters {
        self.state.borrow().counters
    }
}

impl Sink for TelemetrySummary {
    fn record(&mut self, ev: &Event) {
        let mut st = self.state.borrow_mut();
        match *ev {
            Event::Enqueue { .. } => st.counters.enqueues += 1,
            Event::Dequeue {
                at_ps,
                port,
                queue,
                bytes,
                sojourn_ps,
            } => {
                st.counters.dequeues += 1;
                st.queues
                    .entry((port, queue))
                    .or_insert_with(QueueSojourn::new)
                    .observe(bytes, sojourn_ps);
                let w = st.rate_window;
                if w > 0 {
                    st.port_rate
                        .entry(port)
                        .or_insert_with(|| RateWindow::new(Time::from_ps(w)))
                        .record(Time::from_ps(at_ps), bytes as u64);
                }
            }
            Event::BufferDrop { .. } => st.counters.buffer_drops += 1,
            Event::AqmDrop { .. } => st.counters.aqm_drops += 1,
            Event::Mark { .. } => st.counters.marks += 1,
            Event::MarkDecision { marked, .. } => {
                st.counters.mark_decisions += 1;
                if marked {
                    st.counters.mark_decisions_marked += 1;
                }
            }
            Event::SchedService { .. } => st.counters.sched_services += 1,
            Event::EcnReduce { .. } => st.counters.ecn_reduces += 1,
            Event::RtoFired { .. } => st.counters.rtos += 1,
            Event::FastRtx { .. } => st.counters.fast_rtxs += 1,
            Event::CcState { .. } => st.counters.cc_transitions += 1,
            Event::Tick { .. } => {}
        }
    }

    fn on_epoch(&mut self) {
        let mut st = self.state.borrow_mut();
        let w = st.rate_window;
        *st = State::default();
        st.rate_window = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcn_telemetry::Telemetry;

    fn deq(at_ps: u64, port: u32, queue: u16, bytes: u32, sojourn_ps: u64) -> Event {
        Event::Dequeue {
            at_ps,
            port,
            queue,
            bytes,
            sojourn_ps,
        }
    }

    #[test]
    fn aggregates_per_queue_sojourn() {
        let bus = Telemetry::new();
        let sum = TelemetrySummary::new(Time::ZERO);
        bus.add_sink(Box::new(sum.handle()));
        for (i, s) in [10u64, 20, 30, 40, 50].iter().enumerate() {
            bus.record(&deq(i as u64 * 100, 2, 1, 1500, *s));
        }
        bus.record(&deq(999, 3, 0, 100, 7));
        let q = sum.queue(2, 1).expect("queue (2,1) seen");
        assert_eq!(q.dequeues, 5);
        assert_eq!(q.bytes, 7500);
        assert_eq!(q.max_ps, 50);
        assert_eq!(q.mean_ps(), 30.0);
        assert_eq!(q.p50_ps(), 30.0, "exact below 5 samples is exact median");
        assert!(sum.queue(2, 0).is_none());
        assert_eq!(sum.queues().len(), 2);
        assert_eq!(sum.counters().dequeues, 6);
    }

    #[test]
    fn rate_series_tracks_port_throughput() {
        let bus = Telemetry::new();
        let sum = TelemetrySummary::new(Time::from_us(10));
        bus.add_sink(Box::new(sum.handle()));
        // 12 500 B over a 10 us window = 10 Gbps.
        for i in 0..10u64 {
            bus.record(&deq(i * 1000, 0, 0, 1250, 0));
        }
        bus.record(&deq(15_000_000, 0, 0, 1250, 0)); // closes the window
        let s = sum.port_rate_series(0).expect("port 0 series");
        assert!(!s.is_empty());
        assert!((s.points()[0].1 - 1e10).abs() < 1.0, "got {}", s.points()[0].1);
    }

    #[test]
    fn epoch_reset_discards_state_but_keeps_config() {
        let bus = Telemetry::new();
        let sum = TelemetrySummary::new(Time::from_us(10));
        bus.add_sink(Box::new(sum.handle()));
        bus.record(&deq(0, 1, 0, 1500, 5));
        assert_eq!(sum.counters().dequeues, 1);
        bus.begin_epoch();
        assert_eq!(sum.counters().dequeues, 0);
        assert!(sum.queue(1, 0).is_none());
        // Rate windows still configured after the reset.
        bus.record(&deq(0, 1, 0, 1250, 5));
        bus.record(&deq(20_000_000, 1, 0, 1250, 5));
        assert!(sum.port_rate_series(1).is_some());
    }

    #[test]
    fn counts_every_event_class() {
        let bus = Telemetry::new();
        let sum = TelemetrySummary::new(Time::ZERO);
        bus.add_sink(Box::new(sum.handle()));
        bus.record(&Event::Enqueue { at_ps: 1, port: 0, queue: 0, bytes: 9, dscp: 1 });
        bus.record(&Event::BufferDrop { at_ps: 2, port: 0, queue: 0, bytes: 9 });
        bus.record(&Event::AqmDrop { at_ps: 3, port: 0, queue: 0, bytes: 9, dequeue: true });
        bus.record(&Event::Mark { at_ps: 4, port: 0, queue: 0, sojourn_ps: 1, dequeue: true });
        bus.record(&Event::MarkDecision { at_ps: 5, port: 0, aqm: "TCN", sojourn_ps: 1, marked: true });
        bus.record(&Event::MarkDecision { at_ps: 6, port: 0, aqm: "TCN", sojourn_ps: 1, marked: false });
        bus.record(&Event::SchedService { at_ps: 7, port: 0, sched: "DWRR", queue: 0 });
        bus.record(&Event::EcnReduce { at_ps: 8, flow: 1, cwnd_bytes: 10, alpha_ppm: 0 });
        bus.record(&Event::RtoFired { at_ps: 9, flow: 1, cwnd_bytes: 10, timeouts: 1 });
        bus.record(&Event::FastRtx { at_ps: 10, flow: 1, cwnd_bytes: 10 });
        bus.record(&Event::CcState { at_ps: 11, flow: 1, cc: "dctcp", from: "slow-start", to: "recovery" });
        bus.record(&Event::Tick { at_ps: 12, events: 1, pending: 0 });
        let c = sum.counters();
        assert_eq!(
            c,
            TelemetryCounters {
                enqueues: 1,
                dequeues: 0,
                buffer_drops: 1,
                aqm_drops: 1,
                marks: 1,
                mark_decisions: 2,
                mark_decisions_marked: 1,
                sched_services: 1,
                ecn_reduces: 1,
                rtos: 1,
                fast_rtxs: 1,
                cc_transitions: 1,
            }
        );
    }
}
