//! `tcn-telemetry` — the structured event/metric bus every layer of the
//! simulator reports into.
//!
//! The paper's evidence is entirely time-series and distributional
//! (sojourn traces, marking fraction, queue occupancy, FCT percentiles),
//! so the repro needs to see *inside* a run without editing library
//! code. This crate is the instrumentation spine:
//!
//! * [`Event`] — the typed vocabulary of probe points: event-loop ticks
//!   (`tcn_sim`), enqueue/dequeue/drop/mark per port × queue
//!   (`tcn_net`), AQM mark decisions with the sojourn value
//!   (`tcn_core` / `tcn_baselines`), scheduler service decisions
//!   (`tcn_sched`), and congestion-window / RTO / fast-retransmit
//!   episodes (`tcn_transport`).
//! * [`Probe`] — the handle instrumented code holds. A probe is either
//!   *off* (the default: one `Option` branch, no event is even
//!   constructed — [`Probe::emit`] takes a closure) or bound to a
//!   [`Telemetry`] bus. Simulation output is byte-identical with probes
//!   compiled in but off; the engine's bench gate enforces the cost
//!   stays in the noise.
//! * [`Telemetry`] — the bus: a shared handle fanning events out to any
//!   number of [`Sink`]s. Epochs ([`Telemetry::begin_epoch`]) let a
//!   reused engine discard stale series on `EventQueue::clear()`.
//! * [`Sink`] — where events land: [`MemorySink`] here (for tests and
//!   in-process aggregation); the JSONL trace writer and the run-summary
//!   report live downstream (`tcn_experiments`, `tcn_stats`) so this
//!   crate stays dependency-free.
//!
//! Like `tcn-audit`, this crate sits *below* `tcn-sim` in the dependency
//! graph, which is why every field is a primitive (`u64` picoseconds,
//! integer ids) rather than `Time`/`FlowId`: the bottom of the crate
//! graph can use it without a cycle.
//!
//! Handles are `Rc`-based and deliberately **not** `Send`: a telemetry
//! bus belongs to exactly one simulation, and every sweep cell builds
//! its sim (and any telemetry) inside its own worker thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// One telemetry event. Every variant leads with `at_ps`, the simulated
/// time in integer picoseconds (`Time::as_ps()` upstream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A sampled event-loop tick: emitted every N pops by the engine so
    /// long runs cost O(events / N), not O(events).
    Tick {
        /// Simulated time (ps).
        at_ps: u64,
        /// Events processed since the engine started.
        events: u64,
        /// Events still pending in the queue.
        pending: u64,
    },
    /// A packet was admitted to a port queue.
    Enqueue {
        /// Simulated time (ps).
        at_ps: u64,
        /// Link/port index.
        port: u32,
        /// Queue index within the port.
        queue: u16,
        /// Wire bytes of the packet.
        bytes: u32,
        /// DSCP codepoint the classifier used.
        dscp: u8,
    },
    /// A packet left a port queue onto the wire.
    Dequeue {
        /// Simulated time (ps).
        at_ps: u64,
        /// Link/port index.
        port: u32,
        /// Queue index within the port.
        queue: u16,
        /// Wire bytes of the packet.
        bytes: u32,
        /// Time the packet spent queued (ps) — the paper's sojourn
        /// signal.
        sojourn_ps: u64,
    },
    /// A packet was refused admission by the shared-buffer FIFS check.
    BufferDrop {
        /// Simulated time (ps).
        at_ps: u64,
        /// Link/port index.
        port: u32,
        /// Queue the classifier picked.
        queue: u16,
        /// Wire bytes of the packet.
        bytes: u32,
    },
    /// An AQM dropped a packet (at enqueue admission or at dequeue).
    AqmDrop {
        /// Simulated time (ps).
        at_ps: u64,
        /// Link/port index.
        port: u32,
        /// Queue index within the port.
        queue: u16,
        /// Wire bytes of the packet.
        bytes: u32,
        /// `true` when the drop happened on the dequeue path.
        dequeue: bool,
    },
    /// A packet was CE-marked by the port's AQM.
    Mark {
        /// Simulated time (ps).
        at_ps: u64,
        /// Link/port index.
        port: u32,
        /// Queue index within the port.
        queue: u16,
        /// Sojourn time of the marked packet (ps); 0 on the enqueue
        /// path where the packet has not queued yet.
        sojourn_ps: u64,
        /// `true` when the mark happened on the dequeue path.
        dequeue: bool,
    },
    /// An AQM's *decision* on a dequeued packet — emitted by the AQM
    /// itself (TCN, CoDel, RED), with the sojourn value it judged, on
    /// both outcomes so marking fraction is recoverable.
    MarkDecision {
        /// Simulated time (ps).
        at_ps: u64,
        /// Port the AQM instance serves.
        port: u32,
        /// AQM name (`Aqm::name()`).
        aqm: &'static str,
        /// Sojourn time the decision was based on (ps).
        sojourn_ps: u64,
        /// Whether the packet was CE-marked.
        marked: bool,
    },
    /// A scheduler picked a queue to serve.
    SchedService {
        /// Simulated time (ps).
        at_ps: u64,
        /// Port the scheduler instance serves.
        port: u32,
        /// Scheduler name (`Scheduler::name()`).
        sched: &'static str,
        /// Queue selected for service.
        queue: u16,
    },
    /// A sender reduced its congestion window in response to ECN.
    EcnReduce {
        /// Simulated time (ps).
        at_ps: u64,
        /// Flow id.
        flow: u64,
        /// Congestion window after the reduction (bytes).
        cwnd_bytes: u64,
        /// DCTCP `alpha` at the reduction, scaled by 1e6 (0 for ECN*).
        alpha_ppm: u32,
    },
    /// A retransmission timeout fired.
    RtoFired {
        /// Simulated time (ps).
        at_ps: u64,
        /// Flow id.
        flow: u64,
        /// Congestion window after the timeout collapse (bytes).
        cwnd_bytes: u64,
        /// Total timeouts this flow has suffered (backoff depth proxy).
        timeouts: u64,
    },
    /// Dup-ACK fast retransmit was triggered.
    FastRtx {
        /// Simulated time (ps).
        at_ps: u64,
        /// Flow id.
        flow: u64,
        /// Congestion window after entering recovery (bytes).
        cwnd_bytes: u64,
    },
    /// A congestion-control state-machine transition: a controller
    /// phase change ("slow-start" → "recovery", BBR's "startup" →
    /// "drain", …), an ECN path-validation verdict (`cc` =
    /// "ecn-validation"), or a mid-run algorithm switch (`cc` =
    /// "switch", `from`/`to` = algorithm names).
    CcState {
        /// Simulated time (ps).
        at_ps: u64,
        /// Flow id.
        flow: u64,
        /// The state machine that moved: an algorithm name ("dctcp",
        /// "bbr", …), "ecn-validation", or "switch".
        cc: &'static str,
        /// State left.
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
}

impl Event {
    /// Stable string tag for this event (the `"kind"` field of the JSONL
    /// trace schema).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Tick { .. } => "tick",
            Event::Enqueue { .. } => "enqueue",
            Event::Dequeue { .. } => "dequeue",
            Event::BufferDrop { .. } => "buffer_drop",
            Event::AqmDrop { .. } => "aqm_drop",
            Event::Mark { .. } => "mark",
            Event::MarkDecision { .. } => "mark_decision",
            Event::SchedService { .. } => "sched_service",
            Event::EcnReduce { .. } => "ecn_reduce",
            Event::RtoFired { .. } => "rto",
            Event::FastRtx { .. } => "fast_rtx",
            Event::CcState { .. } => "cc_state",
        }
    }

    /// The simulated timestamp, in integer picoseconds.
    pub fn at_ps(&self) -> u64 {
        match *self {
            Event::Tick { at_ps, .. }
            | Event::Enqueue { at_ps, .. }
            | Event::Dequeue { at_ps, .. }
            | Event::BufferDrop { at_ps, .. }
            | Event::AqmDrop { at_ps, .. }
            | Event::Mark { at_ps, .. }
            | Event::MarkDecision { at_ps, .. }
            | Event::SchedService { at_ps, .. }
            | Event::EcnReduce { at_ps, .. }
            | Event::RtoFired { at_ps, .. }
            | Event::FastRtx { at_ps, .. }
            | Event::CcState { at_ps, .. } => at_ps,
        }
    }
}

/// Where events land. Sinks are owned by the bus; state that must be
/// read back after a run is shared out-of-band (see [`MemorySink`]).
pub trait Sink {
    /// Receive one event. Called in simulated-time order as the run
    /// emits them.
    fn record(&mut self, ev: &Event);
    /// The engine was cleared for reuse: drop per-run state so the next
    /// epoch does not report stale series.
    fn on_epoch(&mut self) {}
    /// Flush any buffered output (end of run).
    fn flush(&mut self) {}
}

struct Bus {
    sinks: Vec<Box<dyn Sink>>,
    epoch: u64,
    recorded: u64,
}

/// The telemetry bus: one per simulation, fanning events out to its
/// sinks. Cheap to clone (a shared handle).
#[derive(Clone)]
pub struct Telemetry {
    bus: Rc<RefCell<Bus>>,
}

impl Telemetry {
    /// An empty bus with no sinks.
    pub fn new() -> Self {
        Telemetry {
            bus: Rc::new(RefCell::new(Bus {
                sinks: Vec::new(),
                epoch: 0,
                recorded: 0,
            })),
        }
    }

    /// Attach a sink. Events recorded from now on reach it.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.bus.borrow_mut().sinks.push(sink);
    }

    /// Record one event into every sink.
    pub fn record(&self, ev: &Event) {
        let mut bus = self.bus.borrow_mut();
        bus.recorded += 1;
        for sink in &mut bus.sinks {
            sink.record(ev);
        }
    }

    /// Start a new epoch: every sink discards per-run state. Called by
    /// `EventQueue::clear()` so a reused engine never reports series
    /// from the previous run.
    pub fn begin_epoch(&self) {
        let mut bus = self.bus.borrow_mut();
        bus.epoch += 1;
        for sink in &mut bus.sinks {
            sink.on_epoch();
        }
    }

    /// How many times the bus has been epoch-reset.
    pub fn epoch(&self) -> u64 {
        self.bus.borrow().epoch
    }

    /// Total events recorded across all epochs.
    pub fn recorded(&self) -> u64 {
        self.bus.borrow().recorded
    }

    /// Flush every sink (end of run).
    pub fn flush(&self) {
        for sink in &mut self.bus.borrow_mut().sinks {
            sink.flush();
        }
    }

    /// A probe bound to this bus with context id 0.
    pub fn probe(&self) -> Probe {
        self.probe_for(0)
    }

    /// A probe bound to this bus, carrying `ctx` (a port/link index) so
    /// nested components (schedulers, AQMs) can stamp events with the
    /// port they serve without knowing the network layout.
    pub fn probe_for(&self, ctx: u32) -> Probe {
        Probe {
            tele: Some(self.clone()),
            ctx,
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bus = self.bus.borrow();
        f.debug_struct("Telemetry")
            .field("sinks", &bus.sinks.len())
            .field("epoch", &bus.epoch)
            .field("recorded", &bus.recorded)
            .finish()
    }
}

/// The handle instrumented code holds. Default is **off**: emitting
/// through an off probe is a single `Option` branch and the event is
/// never constructed (the argument to [`Probe::emit`] is a closure).
#[derive(Debug, Clone, Default)]
pub struct Probe {
    tele: Option<Telemetry>,
    ctx: u32,
}

impl Probe {
    /// The disconnected probe (what every component starts with).
    pub const fn off() -> Self {
        Probe { tele: None, ctx: 0 }
    }

    /// Whether a bus is attached. Callers may branch on this before
    /// computing anything expensive shared by several emissions.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.tele.is_some()
    }

    /// The context id (port/link index) this probe was scoped with.
    #[inline]
    pub fn ctx(&self) -> u32 {
        self.ctx
    }

    /// A clone of this probe re-scoped to `ctx` (off stays off).
    pub fn with_ctx(&self, ctx: u32) -> Probe {
        Probe {
            tele: self.tele.clone(),
            ctx,
        }
    }

    /// Emit an event. When the probe is off, `f` is never called — this
    /// is the zero-cost-when-off guarantee.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(t) = &self.tele {
            t.record(&f());
        }
    }

    /// Epoch-reset the attached bus, if any (engine reuse).
    pub fn on_clear(&self) {
        if let Some(t) = &self.tele {
            t.begin_epoch();
        }
    }
}

/// An in-memory sink for tests and in-process analysis. The event
/// buffer is shared: clone the sink (or call [`MemorySink::handle`])
/// before boxing it into the bus, and read the clone after the run.
#[derive(Clone, Default)]
pub struct MemorySink {
    buf: Rc<RefCell<Vec<Event>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A second handle onto the same buffer.
    pub fn handle(&self) -> MemorySink {
        self.clone()
    }

    /// Snapshot of the recorded events (current epoch only).
    pub fn events(&self) -> Vec<Event> {
        self.buf.borrow().clone()
    }

    /// Number of recorded events (current epoch only).
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether nothing has been recorded this epoch.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }
}

impl Sink for MemorySink {
    fn record(&mut self, ev: &Event) {
        self.buf.borrow_mut().push(*ev);
    }

    fn on_epoch(&mut self) {
        self.buf.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_probe_never_calls_the_closure() {
        let p = Probe::off();
        assert!(!p.is_on());
        let mut called = false;
        p.emit(|| {
            called = true;
            Event::Tick {
                at_ps: 0,
                events: 0,
                pending: 0,
            }
        });
        assert!(!called, "off probe must not construct the event");
    }

    #[test]
    fn events_reach_every_sink() {
        let t = Telemetry::new();
        let a = MemorySink::new();
        let b = MemorySink::new();
        t.add_sink(Box::new(a.handle()));
        t.add_sink(Box::new(b.handle()));
        let p = t.probe();
        p.emit(|| Event::Tick {
            at_ps: 7,
            events: 1,
            pending: 0,
        });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(t.recorded(), 1);
        assert_eq!(a.events()[0].at_ps(), 7);
        assert_eq!(a.events()[0].kind(), "tick");
    }

    #[test]
    fn scoped_probe_carries_ctx() {
        let t = Telemetry::new();
        let p = t.probe_for(42);
        assert_eq!(p.ctx(), 42);
        assert_eq!(p.with_ctx(3).ctx(), 3);
        assert!(p.with_ctx(3).is_on());
        assert_eq!(Probe::off().with_ctx(9).is_on(), false);
    }

    #[test]
    fn epoch_reset_clears_memory_sink() {
        let t = Telemetry::new();
        let m = MemorySink::new();
        t.add_sink(Box::new(m.handle()));
        let p = t.probe();
        p.emit(|| Event::FastRtx {
            at_ps: 1,
            flow: 9,
            cwnd_bytes: 100,
        });
        assert_eq!(m.len(), 1);
        p.on_clear();
        assert_eq!(t.epoch(), 1);
        assert!(m.is_empty(), "epoch reset must drop stale events");
        p.emit(|| Event::FastRtx {
            at_ps: 2,
            flow: 9,
            cwnd_bytes: 100,
        });
        assert_eq!(m.len(), 1);
        assert_eq!(m.events()[0].at_ps(), 2);
    }

    #[test]
    fn every_variant_has_kind_and_timestamp() {
        let evs = [
            Event::Tick {
                at_ps: 1,
                events: 0,
                pending: 0,
            },
            Event::Enqueue {
                at_ps: 2,
                port: 0,
                queue: 0,
                bytes: 0,
                dscp: 0,
            },
            Event::Dequeue {
                at_ps: 3,
                port: 0,
                queue: 0,
                bytes: 0,
                sojourn_ps: 0,
            },
            Event::BufferDrop {
                at_ps: 4,
                port: 0,
                queue: 0,
                bytes: 0,
            },
            Event::AqmDrop {
                at_ps: 5,
                port: 0,
                queue: 0,
                bytes: 0,
                dequeue: true,
            },
            Event::Mark {
                at_ps: 6,
                port: 0,
                queue: 0,
                sojourn_ps: 0,
                dequeue: true,
            },
            Event::MarkDecision {
                at_ps: 7,
                port: 0,
                aqm: "TCN",
                sojourn_ps: 0,
                marked: false,
            },
            Event::SchedService {
                at_ps: 8,
                port: 0,
                sched: "DWRR",
                queue: 0,
            },
            Event::EcnReduce {
                at_ps: 9,
                flow: 0,
                cwnd_bytes: 0,
                alpha_ppm: 0,
            },
            Event::RtoFired {
                at_ps: 10,
                flow: 0,
                cwnd_bytes: 0,
                timeouts: 0,
            },
            Event::FastRtx {
                at_ps: 11,
                flow: 0,
                cwnd_bytes: 0,
            },
            Event::CcState {
                at_ps: 12,
                flow: 0,
                cc: "bbr",
                from: "startup",
                to: "drain",
            },
        ];
        let mut kinds: Vec<&str> = evs.iter().map(Event::kind).collect();
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.at_ps(), i as u64 + 1);
        }
        kinds.dedup();
        assert_eq!(kinds.len(), evs.len(), "kinds must be distinct");
    }
}
