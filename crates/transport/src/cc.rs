//! The pluggable congestion-control layer: a [`CongestionControl`]
//! trait hosting window/rate policy, with the reliability machinery
//! (sequence tracking, retransmission, RTO timers, pumping) staying in
//! [`TcpSender`](crate::TcpSender).
//!
//! Division of labour — the sender owns *what* is outstanding and
//! *when* to retransmit; the controller owns *how much* may be in
//! flight. Every hook receives a [`CcCtx`] snapshot (connection state
//! the policy may read but not mutate) and mutates only its own window
//! state. Hooks are infallible and allocation-free: controllers hold
//! fixed-size state (BBR's bandwidth filter is a fixed ring), so the
//! zero-alloc `*_into` discipline of the sender survives the
//! indirection.
//!
//! Four controllers ship in-tree, each documented with its source:
//! DCTCP and ECN\* (the paper's transports, bit-for-bit the dynamics of
//! the pre-trait monolithic sender — pinned by the differential suite
//! in `tests/cc_differential.rs`), CUBIC (RFC 8312) and BBR (Cardwell
//! et al.). Dispatch is through the [`CcAlgo`] enum rather than
//! `Box<dyn>`: senders stay `Clone + Copy`-friendly, and the compiler
//! devirtualizes the per-ACK hot path.

use tcn_sim::Time;

/// Congestion-control algorithm selector (fieldless — tuning knobs such
/// as the DCTCP gain live in [`TcpConfig`](crate::TcpConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cc {
    /// DCTCP (Alizadeh et al., SIGCOMM 2010).
    Dctcp,
    /// ECN\*: regular ECN-enabled TCP, halve once per window (paper §2.1).
    EcnStar,
    /// CUBIC (RFC 8312) — loss-based, not ECN-capable here.
    Cubic,
    /// BBR (Cardwell et al., ACM Queue 2016) — model-based, ignores ECN.
    Bbr,
}

impl Cc {
    /// Stable lowercase name, used in telemetry events, scenario files
    /// and config files.
    pub fn name(self) -> &'static str {
        match self {
            Cc::Dctcp => "dctcp",
            Cc::EcnStar => "ecn-star",
            Cc::Cubic => "cubic",
            Cc::Bbr => "bbr",
        }
    }

    /// Inverse of [`name`](Cc::name) (used by the scenario DSL and the
    /// sweep config loader).
    pub fn from_name(s: &str) -> Option<Cc> {
        match s {
            "dctcp" => Some(Cc::Dctcp),
            "ecn-star" | "ecnstar" | "ecn_star" => Some(Cc::EcnStar),
            "cubic" => Some(Cc::Cubic),
            "bbr" => Some(Cc::Bbr),
            _ => None,
        }
    }
}

/// Read-only connection snapshot handed to every controller hook.
///
/// Built fresh by the sender at each hook site so the fields always
/// reflect the *current* connection state for that hook (e.g. `snd_nxt`
/// is read before the post-hook pump, and on RTO before go-back-N
/// rewinds it — the value a one-reduction-per-window gate must latch).
#[derive(Debug, Clone, Copy)]
pub struct CcCtx {
    /// Current virtual time.
    pub now: Time,
    /// First unacknowledged byte (already advanced for fresh-ACK hooks).
    pub snd_una: u64,
    /// Next new byte the sender would transmit.
    pub snd_nxt: u64,
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_thresh: u32,
    /// Smoothed RTT, once sampled.
    pub srtt: Option<Time>,
    /// The RTT sample taken on *this* ACK (Karn-valid), if any.
    pub latest_rtt: Option<Time>,
}

/// The congestion-control policy contract.
///
/// Call order per ACK (mirroring the pre-trait sender exactly, so
/// DCTCP/ECN\* remain byte-identical):
///
/// 1. [`on_ack`](CongestionControl::on_ack) — every ACK, duplicate or
///    fresh (DCTCP's per-ACK byte accounting, BBR's delivery samples).
/// 2. Duplicate ACKs: [`on_dup_inflate`](CongestionControl::on_dup_inflate)
///    while in recovery, or [`on_loss`](CongestionControl::on_loss) when
///    the dup-ACK threshold fires.
/// 3. Fresh ACKs: [`on_fresh_ack`](CongestionControl::on_fresh_ack)
///    (recovery exit or window growth, plus per-window rollovers).
/// 4. [`on_ecn_echo`](CongestionControl::on_ecn_echo) when the ACK
///    carried ECE (skipped if the threshold retransmit fired, and
///    filtered by the [`EcnValidator`](crate::EcnValidator) first).
///
/// The sender reads back [`cwnd`](CongestionControl::cwnd) (or
/// [`pacing_rate`](CongestionControl::pacing_rate), for controllers
/// that prefer a rate) to budget transmission.
pub trait CongestionControl {
    /// Stable algorithm name ("dctcp", "cubic", …).
    fn name(&self) -> &'static str;

    /// Current state-machine phase as a stable string for telemetry
    /// ("slow-start", "probe-bw", …).
    fn state(&self) -> &'static str;

    /// Congestion window in bytes. The sender always allows at least
    /// one MSS so a collapsed window cannot deadlock.
    fn cwnd(&self) -> f64;

    /// Pacing rate in bytes/sec, for rate-based controllers. `None`
    /// means "window-only" and the sender budgets purely by `cwnd`.
    fn pacing_rate(&self) -> Option<f64> {
        None
    }

    /// True while in loss recovery (the sender inflates instead of
    /// retriggering fast retransmit on further dup ACKs).
    fn in_recovery(&self) -> bool;

    /// Whether data segments should be sent ECT (ECN-capable
    /// transport). Loss-based controllers return false and their
    /// packets sail through sojourn markers unmarked.
    fn ecn_capable(&self) -> bool;

    /// DCTCP's marked-fraction estimate (0 elsewhere; surfaced in the
    /// `EcnReduce` telemetry event).
    fn alpha(&self) -> f64 {
        0.0
    }

    /// Every ACK, before dup/fresh classification.
    /// `newly_acked` is 0 for duplicates.
    fn on_ack(&mut self, newly_acked: u64, ece: bool, ctx: &CcCtx);

    /// A duplicate ACK arrived while already in recovery: keep the pipe
    /// full (Reno window inflation).
    fn on_dup_inflate(&mut self, ctx: &CcCtx);

    /// A fresh (window-advancing) ACK: exit recovery or grow.
    fn on_fresh_ack(&mut self, newly_acked: u64, ctx: &CcCtx);

    /// The ACK carried an ECN echo. Returns true when a window
    /// reduction was actually applied (controllers gate to one per
    /// window, RFC 3168 CWR semantics); the sender then emits the
    /// `EcnReduce` telemetry event.
    fn on_ecn_echo(&mut self, ctx: &CcCtx) -> bool;

    /// The dup-ACK threshold fired: fast retransmit is about to happen.
    /// Cut and enter recovery. `ctx.snd_nxt` is the recovery point.
    fn on_loss(&mut self, ctx: &CcCtx);

    /// The retransmission timer expired: collapse. `ctx.snd_nxt` is the
    /// pre-rewind high-water mark (the one-reduction-per-window gate
    /// must cover everything sent so far).
    fn on_rto(&mut self, ctx: &CcCtx);

    /// A data segment was handed to the wire (new or retransmitted).
    /// Default no-op; model-based controllers track rounds here.
    fn on_sent(&mut self, _seq: u64, _bytes: u32, _is_rtx: bool, _ctx: &CcCtx) {
        let _ = self;
    }
}

/// Window phase shared by the Reno-machinery controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SlowStart,
    CongestionAvoidance,
    /// Fast recovery (simplified Reno).
    Recovery,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::SlowStart => "slow-start",
            Phase::CongestionAvoidance => "congestion-avoidance",
            Phase::Recovery => "recovery",
        }
    }
}

/// The Reno window core shared by [`DctcpCc`] and [`EcnStarCc`]:
/// slow start, congestion avoidance, simplified-Reno recovery, and the
/// one-reduction-per-window CWR gate. Every floating-point expression
/// here is copied verbatim from the pre-trait sender — the differential
/// suite holds the two byte-identical, so do not "simplify" the math.
#[derive(Debug, Clone, Copy)]
struct RenoCore {
    cwnd: f64,
    ssthresh: f64,
    phase: Phase,
    /// Ignore further window reductions until `snd_una` passes this
    /// (one reduction per window, for both ECN and loss).
    cwr_end: u64,
}

impl RenoCore {
    fn new(init_cwnd_bytes: f64) -> Self {
        RenoCore {
            cwnd: init_cwnd_bytes,
            ssthresh: f64::MAX,
            phase: Phase::SlowStart,
            cwr_end: 0,
        }
    }

    fn dup_inflate(&mut self, ctx: &CcCtx) {
        self.cwnd += f64::from(ctx.mss);
    }

    /// Recovery exit (any advance past the hole, simplified NewReno) or
    /// window growth.
    fn fresh_ack(&mut self, newly_acked: u64, ctx: &CcCtx) {
        if self.phase == Phase::Recovery {
            self.phase = Phase::CongestionAvoidance;
            self.cwnd = self.ssthresh.max(f64::from(ctx.mss));
        } else {
            self.grow(newly_acked, ctx);
        }
    }

    fn grow(&mut self, newly_acked: u64, ctx: &CcCtx) {
        let mss = f64::from(ctx.mss);
        match self.phase {
            Phase::SlowStart => {
                self.cwnd += newly_acked as f64;
                if self.cwnd >= self.ssthresh {
                    self.cwnd = self.ssthresh;
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                // +1 MSS per RTT, per-ACK increment.
                self.cwnd += mss * mss / self.cwnd;
            }
            Phase::Recovery => {}
        }
    }

    /// One window reduction per window of data (RFC 3168 CWR
    /// semantics). Returns false when the gate suppressed the cut.
    fn ecn_cut(&mut self, factor: f64, ctx: &CcCtx) -> bool {
        if ctx.snd_una < self.cwr_end || self.phase == Phase::Recovery {
            return false;
        }
        self.cwr_end = ctx.snd_nxt;
        let floor = f64::from(ctx.mss);
        self.cwnd = (self.cwnd * factor).max(floor);
        self.ssthresh = self.cwnd;
        self.phase = Phase::CongestionAvoidance;
        true
    }

    /// Fast-retransmit entry: multiplicative decrease plus dup-ACK
    /// inflation, enter recovery.
    fn loss(&mut self, ctx: &CcCtx) {
        let mss = f64::from(ctx.mss);
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * mss);
        self.cwnd = self.ssthresh + f64::from(ctx.dupack_thresh) * mss;
        self.phase = Phase::Recovery;
        self.cwr_end = ctx.snd_nxt;
    }

    /// RTO: collapse to one segment and restart slow start.
    fn rto(&mut self, ctx: &CcCtx) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * f64::from(ctx.mss));
        self.cwnd = f64::from(ctx.mss);
        self.phase = Phase::SlowStart;
        self.cwr_end = ctx.snd_nxt;
    }
}

/// DCTCP — Alizadeh et al., "Data Center TCP (DCTCP)", SIGCOMM 2010,
/// §3.3: the receiver echoes CE per packet; the sender maintains the
/// marked fraction `α ← (1−g)·α + g·F` once per window of data and cuts
/// `cwnd ← cwnd·(1 − α/2)` at most once per window. Loss machinery is
/// the shared Reno core (the source paper's §5 setups run DCTCP over
/// standard Reno-style recovery).
#[derive(Debug, Clone, Copy)]
pub struct DctcpCc {
    core: RenoCore,
    /// The α estimation gain (the paper uses 1/16).
    g: f64,
    alpha: f64,
    acked_bytes: u64,
    marked_bytes: u64,
    /// The window ends when `snd_una` passes this sequence.
    window_end: u64,
}

impl DctcpCc {
    /// A fresh DCTCP controller with gain `g`.
    pub fn new(init_cwnd_bytes: f64, g: f64) -> Self {
        DctcpCc {
            core: RenoCore::new(init_cwnd_bytes),
            g,
            alpha: 0.0,
            acked_bytes: 0,
            marked_bytes: 0,
            window_end: 0,
        }
    }
}

impl CongestionControl for DctcpCc {
    fn name(&self) -> &'static str {
        "dctcp"
    }
    fn state(&self) -> &'static str {
        self.core.phase.as_str()
    }
    fn cwnd(&self) -> f64 {
        self.core.cwnd
    }
    fn in_recovery(&self) -> bool {
        self.core.phase == Phase::Recovery
    }
    fn ecn_capable(&self) -> bool {
        true
    }
    fn alpha(&self) -> f64 {
        self.alpha
    }

    fn on_ack(&mut self, newly_acked: u64, ece: bool, _ctx: &CcCtx) {
        // DCTCP bookkeeping counts every ACK, marked or not.
        self.acked_bytes += newly_acked;
        if ece {
            self.marked_bytes += newly_acked.max(1);
        }
    }

    fn on_dup_inflate(&mut self, ctx: &CcCtx) {
        self.core.dup_inflate(ctx);
    }

    fn on_fresh_ack(&mut self, newly_acked: u64, ctx: &CcCtx) {
        self.core.fresh_ack(newly_acked, ctx);
        // DCTCP window rollover: update α once per window of data.
        if ctx.snd_una >= self.window_end {
            let f = if self.acked_bytes > 0 {
                (self.marked_bytes as f64 / self.acked_bytes as f64).min(1.0)
            } else {
                0.0
            };
            self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
            self.acked_bytes = 0;
            self.marked_bytes = 0;
            self.window_end = ctx.snd_nxt;
        }
    }

    fn on_ecn_echo(&mut self, ctx: &CcCtx) -> bool {
        self.core.ecn_cut(1.0 - self.alpha / 2.0, ctx)
    }

    fn on_loss(&mut self, ctx: &CcCtx) {
        self.core.loss(ctx);
    }

    fn on_rto(&mut self, ctx: &CcCtx) {
        self.core.rto(ctx);
    }
}

/// ECN\* — the source paper §2.1 (footnote 2): regular ECN-enabled TCP
/// that "simply cuts the window by half in the presence of an ECN
/// mark", at most once per window (λ = 1 in the threshold formulas).
/// The paper calls it the most challenging transport because it has no
/// smoothing (§6.2.2).
#[derive(Debug, Clone, Copy)]
pub struct EcnStarCc {
    core: RenoCore,
}

impl EcnStarCc {
    /// A fresh ECN\* controller.
    pub fn new(init_cwnd_bytes: f64) -> Self {
        EcnStarCc {
            core: RenoCore::new(init_cwnd_bytes),
        }
    }
}

impl CongestionControl for EcnStarCc {
    fn name(&self) -> &'static str {
        "ecn-star"
    }
    fn state(&self) -> &'static str {
        self.core.phase.as_str()
    }
    fn cwnd(&self) -> f64 {
        self.core.cwnd
    }
    fn in_recovery(&self) -> bool {
        self.core.phase == Phase::Recovery
    }
    fn ecn_capable(&self) -> bool {
        true
    }

    fn on_ack(&mut self, _newly_acked: u64, _ece: bool, _ctx: &CcCtx) {}

    fn on_dup_inflate(&mut self, ctx: &CcCtx) {
        self.core.dup_inflate(ctx);
    }

    fn on_fresh_ack(&mut self, newly_acked: u64, ctx: &CcCtx) {
        self.core.fresh_ack(newly_acked, ctx);
    }

    fn on_ecn_echo(&mut self, ctx: &CcCtx) -> bool {
        self.core.ecn_cut(0.5, ctx)
    }

    fn on_loss(&mut self, ctx: &CcCtx) {
        self.core.loss(ctx);
    }

    fn on_rto(&mut self, ctx: &CcCtx) {
        self.core.rto(ctx);
    }
}

/// CUBIC unit-less window constant `C` (RFC 8312 §5).
const CUBIC_C: f64 = 0.4;
/// CUBIC multiplicative decrease factor β (RFC 8312 §4.5).
const CUBIC_BETA: f64 = 0.7;

/// CUBIC — RFC 8312 (Rhee et al.): window growth is the cubic function
/// `W(t) = C·(t−K)³ + W_max` (§4.1) anchored at the last-loss window
/// `W_max`, with the TCP-friendly region `W_est` (§4.2) taking over
/// when the cubic curve would be slower than Reno, β = 0.7 decrease
/// (§4.5) and fast convergence (§4.6). Not ECN-capable here: CUBIC is
/// this repo's loss-based tenant, the one per-queue RED starves and
/// sojourn-based TCN must coexist with.
#[derive(Debug, Clone, Copy)]
pub struct CubicCc {
    cwnd: f64,
    ssthresh: f64,
    phase: Phase,
    /// Window (bytes) just before the last reduction.
    w_max: f64,
    /// Congestion-avoidance epoch start (None → re-anchor on next ACK).
    epoch_start: Option<Time>,
    /// Time offset (secs) at which the cubic curve regains `w_max`.
    k: f64,
    /// Bytes acked since the epoch began (drives the TCP-friendly
    /// estimate without wall-clock smoothing).
    est_epoch_acked: f64,
    /// RFC 8312 §4.6 fast convergence: release bandwidth faster when a
    /// flow's ceiling is shrinking.
    fast_convergence: bool,
}

impl CubicCc {
    /// A fresh CUBIC controller.
    pub fn new(init_cwnd_bytes: f64) -> Self {
        CubicCc {
            cwnd: init_cwnd_bytes,
            ssthresh: f64::MAX,
            phase: Phase::SlowStart,
            w_max: init_cwnd_bytes,
            epoch_start: None,
            k: 0.0,
            est_epoch_acked: 0.0,
            fast_convergence: true,
        }
    }

    /// Multiplicative decrease shared by fast retransmit and RTO
    /// (RFC 8312 §4.5-4.6).
    fn reduce(&mut self) {
        if self.fast_convergence && self.cwnd < self.w_max {
            // §4.6: the ceiling is shrinking — remember an even lower
            // W_max so competing flows converge faster.
            self.w_max = self.cwnd * (2.0 - CUBIC_BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.epoch_start = None;
    }

    /// Per-ACK congestion-avoidance step (RFC 8312 §4.1-4.3).
    fn cubic_grow(&mut self, newly_acked: u64, ctx: &CcCtx) {
        let mss = f64::from(ctx.mss);
        let Some(srtt) = ctx.srtt else {
            // No RTT estimate yet: Reno step until one exists.
            self.cwnd += mss * mss / self.cwnd;
            return;
        };
        if self.epoch_start.is_none() {
            self.epoch_start = Some(ctx.now);
            // K = cbrt((W_max − cwnd)/C), windows in MSS units (§4.1).
            let w = self.cwnd / mss;
            let wm = self.w_max / mss;
            self.k = if wm > w { ((wm - w) / CUBIC_C).cbrt() } else { 0.0 };
            self.est_epoch_acked = 0.0;
        }
        self.est_epoch_acked += newly_acked as f64;
        let epoch = self.epoch_start.unwrap_or(ctx.now);
        // Target the curve one RTT ahead (§4.1: W_cubic(t + RTT)).
        let t = ctx.now.saturating_sub(epoch).saturating_add(srtt).as_secs_f64();
        let wm = self.w_max / mss;
        let target = CUBIC_C * (t - self.k) * (t - self.k) * (t - self.k) + wm;
        // TCP-friendly region (§4.2): match Reno when cubic is slower.
        // W_est = W_max·β + 3(1−β)/(1+β) · acked/cwnd (in MSS).
        let w_est = wm * CUBIC_BETA
            + 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * (self.est_epoch_acked / self.cwnd);
        let w = self.cwnd / mss;
        let next = target.max(w_est);
        if next > w {
            // §4.3: spread the climb over the window, one increment
            // per ACK, capped at a 1.5×-per-RTT slow-start-like rate.
            let step = ((next - w) / w).min(0.5);
            self.cwnd += step * mss;
        }
    }
}

impl CongestionControl for CubicCc {
    fn name(&self) -> &'static str {
        "cubic"
    }
    fn state(&self) -> &'static str {
        self.phase.as_str()
    }
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn in_recovery(&self) -> bool {
        self.phase == Phase::Recovery
    }
    fn ecn_capable(&self) -> bool {
        false
    }

    fn on_ack(&mut self, _newly_acked: u64, _ece: bool, _ctx: &CcCtx) {}

    fn on_dup_inflate(&mut self, ctx: &CcCtx) {
        self.cwnd += f64::from(ctx.mss);
    }

    fn on_fresh_ack(&mut self, newly_acked: u64, ctx: &CcCtx) {
        let mss = f64::from(ctx.mss);
        match self.phase {
            Phase::Recovery => {
                self.phase = Phase::CongestionAvoidance;
                self.cwnd = self.ssthresh.max(mss);
                self.epoch_start = None;
            }
            Phase::SlowStart => {
                self.cwnd += newly_acked as f64;
                if self.cwnd >= self.ssthresh {
                    self.cwnd = self.ssthresh;
                    self.phase = Phase::CongestionAvoidance;
                    self.epoch_start = None;
                }
            }
            Phase::CongestionAvoidance => self.cubic_grow(newly_acked, ctx),
        }
    }

    fn on_ecn_echo(&mut self, _ctx: &CcCtx) -> bool {
        // Loss-based: segments are sent Not-ECT, so echoes never occur;
        // if one did (mangled path), ignore it.
        false
    }

    fn on_loss(&mut self, ctx: &CcCtx) {
        self.reduce();
        let mss = f64::from(ctx.mss);
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0 * mss);
        self.cwnd = self.ssthresh + f64::from(ctx.dupack_thresh) * mss;
        self.phase = Phase::Recovery;
    }

    fn on_rto(&mut self, ctx: &CcCtx) {
        self.reduce();
        let mss = f64::from(ctx.mss);
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0 * mss);
        self.cwnd = mss;
        self.phase = Phase::SlowStart;
    }
}

/// BBR operating mode (Cardwell et al., Fig. 1 state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbrMode {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

impl BbrMode {
    fn as_str(self) -> &'static str {
        match self {
            BbrMode::Startup => "startup",
            BbrMode::Drain => "drain",
            BbrMode::ProbeBw => "probe-bw",
            BbrMode::ProbeRtt => "probe-rtt",
        }
    }
}

/// Tuning knobs for [`BbrCc`] — exposed so unit tests can shrink the
/// filter windows and drive the ProbeRTT machinery in a handful of
/// synthetic ACKs.
#[derive(Debug, Clone, Copy)]
pub struct BbrParams {
    /// Max-bandwidth filter length in round trips (BBR uses 10).
    pub bw_window_rounds: u32,
    /// Min-RTT filter expiry (BBR uses 10 s).
    pub min_rtt_window: Time,
    /// Time spent at the ProbeRTT floor (BBR uses 200 ms).
    pub probe_rtt_duration: Time,
    /// Startup exits when bandwidth grew less than this factor…
    pub startup_growth_thresh: f64,
    /// …for this many consecutive rounds (BBR: 1.25× over 3 rounds).
    pub startup_full_rounds: u32,
}

impl Default for BbrParams {
    fn default() -> Self {
        BbrParams {
            bw_window_rounds: 10,
            min_rtt_window: Time::from_secs(10),
            probe_rtt_duration: Time::from_ms(200),
            startup_growth_thresh: 1.25,
            startup_full_rounds: 3,
        }
    }
}

/// Capacity of the bandwidth-filter ring (≥ any sane
/// `bw_window_rounds`; fixed so the controller stays allocation-free).
const BBR_BW_RING: usize = 16;

/// ProbeBW pacing-gain cycle (Cardwell et al., §4.3.4.3): one
/// probing round at 5/4, one draining round at 3/4, six cruising.
const BBR_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// BBR — Cardwell, Cheng, Gunn, Yeganeh & Jacobson, "BBR:
/// Congestion-Based Congestion Control", ACM Queue 14(5), 2016 (and
/// draft-cardwell-iccrg-bbr-congestion-control): an explicit path model
/// of bottleneck bandwidth (windowed-max filter over delivery-rate
/// samples, §4.1) and round-trip propagation delay (windowed-min
/// filter), sequenced through the Startup → Drain → ProbeBW ⇄ ProbeRTT
/// state machine (§4.3). This is a *window-based approximation*: the
/// simulator has no pacing clock, so the inflight cap `cwnd_gain × BDP`
/// carries the gain cycle instead of the pacing rate, and the cycle
/// advances per round trip. BBRv1 deliberately ignores both individual
/// losses and ECN marks (§4.3.4.4 discusses why); retransmission is the
/// sender's job and the bandwidth filter absorbs the delivery dip.
#[derive(Debug, Clone, Copy)]
pub struct BbrCc {
    params: BbrParams,
    mode: BbrMode,
    cwnd: f64,
    mss: f64,

    /// Windowed max-filter over per-round delivery-rate samples
    /// (bytes/sec), newest at `ring_head`.
    bw_ring: [f64; BBR_BW_RING],
    ring_head: usize,
    ring_len: usize,

    min_rtt: Option<Time>,
    min_rtt_stamp: Time,

    /// Round-trip accounting: a round ends when `snd_una` passes the
    /// `snd_nxt` snapshot taken when the round began.
    round_end: u64,
    round_start: Time,
    delivered_this_round: u64,
    round_count: u64,

    /// Instantaneous delivery-rate sampling: previous fresh-ACK arrival
    /// and the best bytes-per-ack-gap rate seen this round. The
    /// per-round *average* (`delivered / elapsed`) under-reports the
    /// path when the sender is window-limited or idles through an RTO —
    /// feeding only averages into the max filter locks a starved flow
    /// into a starved model. ACK spacing measures the service rate the
    /// scheduler is actually offering, whatever the window is.
    last_ack_at: Option<Time>,
    round_inst_bw: f64,

    /// Startup full-pipe detection.
    full_bw: f64,
    full_bw_rounds: u32,
    filled_pipe: bool,

    /// ProbeBW gain-cycle index.
    cycle_index: usize,
    /// ProbeRTT exit deadline and the window to restore afterwards.
    probe_rtt_done: Option<Time>,
    prior_cwnd: f64,
}

impl BbrCc {
    /// A fresh BBR controller with default parameters.
    pub fn new(init_cwnd_bytes: f64, mss: u32) -> Self {
        BbrCc::with_params(init_cwnd_bytes, mss, BbrParams::default())
    }

    /// A fresh BBR controller with explicit parameters (unit tests
    /// shrink the filter windows).
    pub fn with_params(init_cwnd_bytes: f64, mss: u32, params: BbrParams) -> Self {
        BbrCc {
            params,
            mode: BbrMode::Startup,
            cwnd: init_cwnd_bytes,
            mss: f64::from(mss),
            bw_ring: [0.0; BBR_BW_RING],
            ring_head: 0,
            ring_len: 0,
            min_rtt: None,
            min_rtt_stamp: Time::ZERO,
            round_end: 0,
            round_start: Time::ZERO,
            delivered_this_round: 0,
            round_count: 0,
            last_ack_at: None,
            round_inst_bw: 0.0,
            full_bw: 0.0,
            full_bw_rounds: 0,
            filled_pipe: false,
            cycle_index: 0,
            probe_rtt_done: None,
            prior_cwnd: init_cwnd_bytes,
        }
    }

    /// Windowed maximum of the bandwidth ring (bytes/sec).
    fn max_bw(&self) -> f64 {
        let n = self.ring_len.min(self.params.bw_window_rounds as usize);
        let mut best = 0.0f64;
        for i in 0..n {
            let idx = (self.ring_head + BBR_BW_RING - i) % BBR_BW_RING;
            if self.bw_ring[idx] > best {
                best = self.bw_ring[idx];
            }
        }
        best
    }

    /// Bandwidth-delay product in bytes from the two filters (0 until
    /// both have samples).
    fn bdp(&self) -> f64 {
        match self.min_rtt {
            Some(rtt) => self.max_bw() * rtt.as_secs_f64(),
            None => 0.0,
        }
    }

    fn push_bw_sample(&mut self, bw: f64) {
        self.ring_head = (self.ring_head + 1) % BBR_BW_RING;
        self.bw_ring[self.ring_head] = bw;
        if self.ring_len < BBR_BW_RING {
            self.ring_len += 1;
        }
    }

    /// End-of-round: take a delivery-rate sample, run full-pipe
    /// detection and the mode transitions.
    fn end_round(&mut self, ctx: &CcCtx) {
        let elapsed = ctx.now.saturating_sub(self.round_start);
        if elapsed > Time::ZERO && self.delivered_this_round > 0 {
            let avg = self.delivered_this_round as f64 / elapsed.as_secs_f64();
            // The average is a floor (window-limited rounds and RTO idle
            // drag it down); the best ACK-gap rate of the round is what
            // the path actually served. Take whichever is larger.
            self.push_bw_sample(avg.max(self.round_inst_bw));
        }
        self.round_count += 1;
        self.round_start = ctx.now;
        self.round_end = ctx.snd_nxt;
        self.delivered_this_round = 0;
        self.round_inst_bw = 0.0;

        if !self.filled_pipe {
            // Full-pipe heuristic: bandwidth stopped growing ≥ 25 %
            // for `startup_full_rounds` consecutive rounds.
            let bw = self.max_bw();
            if bw >= self.full_bw * self.params.startup_growth_thresh {
                self.full_bw = bw;
                self.full_bw_rounds = 0;
            } else {
                self.full_bw_rounds += 1;
                if self.full_bw_rounds >= self.params.startup_full_rounds {
                    self.filled_pipe = true;
                    if self.mode == BbrMode::Startup {
                        self.mode = BbrMode::Drain;
                    }
                }
            }
        }
        if self.mode == BbrMode::ProbeBw {
            self.cycle_index = (self.cycle_index + 1) % BBR_CYCLE.len();
        }
        self.apply_cwnd(ctx);
    }

    /// Recompute the inflight cap from the path model for the current
    /// mode (the window-based stand-in for pacing-gain modulation).
    fn apply_cwnd(&mut self, ctx: &CcCtx) {
        let bdp = self.bdp();
        let floor = 4.0 * self.mss;
        match self.mode {
            BbrMode::Startup => {
                // Growth handled per-ACK (slow-start-like); only clamp up
                // to the model if it already exceeds the exponential.
                if bdp > 0.0 {
                    self.cwnd = self.cwnd.max(2.0 * bdp);
                }
            }
            BbrMode::Drain => {
                if bdp > 0.0 {
                    self.cwnd = bdp.max(floor);
                    // Exit once inflight has come down to the (floored)
                    // drain target. Comparing against raw `bdp` deadlocks
                    // when the model's BDP sinks below the 4-MSS floor:
                    // the sender then keeps 4 MSS in flight forever and
                    // the startup overshoot is long gone anyway.
                    let inflight = ctx.snd_nxt.saturating_sub(ctx.snd_una) as f64;
                    if inflight <= self.cwnd {
                        self.mode = BbrMode::ProbeBw;
                        self.cycle_index = 0;
                        self.cwnd = (2.0 * bdp).max(floor);
                    }
                }
            }
            BbrMode::ProbeBw => {
                if bdp > 0.0 {
                    self.cwnd = (2.0 * bdp * BBR_CYCLE[self.cycle_index]).max(floor);
                }
            }
            BbrMode::ProbeRtt => {
                self.cwnd = floor;
            }
        }
    }

    /// Enter/exit ProbeRTT per the min-RTT filter age (§4.3.4.4 of the
    /// draft: 200 ms at 4 packets when the estimate is stale).
    fn check_probe_rtt(&mut self, ctx: &CcCtx) {
        match self.mode {
            BbrMode::ProbeRtt => {
                if let Some(done) = self.probe_rtt_done {
                    if ctx.now >= done {
                        self.min_rtt_stamp = ctx.now;
                        self.probe_rtt_done = None;
                        self.mode = if self.filled_pipe {
                            BbrMode::ProbeBw
                        } else {
                            BbrMode::Startup
                        };
                        self.cwnd = self.prior_cwnd;
                        self.apply_cwnd(ctx);
                    }
                }
            }
            _ => {
                let stale = self.min_rtt.is_some()
                    && ctx.now.saturating_sub(self.min_rtt_stamp) > self.params.min_rtt_window;
                if stale {
                    self.prior_cwnd = self.cwnd;
                    self.mode = BbrMode::ProbeRtt;
                    self.probe_rtt_done =
                        Some(ctx.now.saturating_add(self.params.probe_rtt_duration));
                    self.cwnd = 4.0 * self.mss;
                }
            }
        }
    }
}

impl CongestionControl for BbrCc {
    fn name(&self) -> &'static str {
        "bbr"
    }
    fn state(&self) -> &'static str {
        self.mode.as_str()
    }
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn pacing_rate(&self) -> Option<f64> {
        let bw = self.max_bw();
        if bw > 0.0 {
            Some(bw)
        } else {
            None
        }
    }
    fn in_recovery(&self) -> bool {
        false
    }
    fn ecn_capable(&self) -> bool {
        false
    }

    fn on_ack(&mut self, newly_acked: u64, _ece: bool, ctx: &CcCtx) {
        self.delivered_this_round += newly_acked;
        let _ = ctx;
    }

    fn on_dup_inflate(&mut self, _ctx: &CcCtx) {
        // Model-based: no dup-ACK inflation.
    }

    fn on_fresh_ack(&mut self, newly_acked: u64, ctx: &CcCtx) {
        debug_assert!(newly_acked > 0);
        // Instantaneous delivery-rate sample from the fresh-ACK gap
        // (see the field docs: the round average alone death-spirals a
        // window-limited flow). Cumulative ACKs after recovery can cover
        // several segments in one gap; that is a genuine delivery burst
        // and the max filter is built to take the peak.
        if let Some(prev) = self.last_ack_at {
            let gap = ctx.now.saturating_sub(prev);
            if gap > Time::ZERO {
                let bw = newly_acked as f64 / gap.as_secs_f64();
                if bw > self.round_inst_bw {
                    self.round_inst_bw = bw;
                }
            }
        }
        self.last_ack_at = Some(ctx.now);
        // Min-RTT filter: Karn-safe samples only arrive on fresh ACKs
        // (`ctx.latest_rtt` is always `None` in the per-ACK hook).
        if let Some(sample) = ctx.latest_rtt {
            let better = match self.min_rtt {
                None => true,
                Some(cur) => sample <= cur,
            };
            if better {
                self.min_rtt = Some(sample);
                self.min_rtt_stamp = ctx.now;
            }
        }
        if self.mode == BbrMode::Startup && !self.filled_pipe {
            // Exponential ramp (2×/RTT) until the pipe is measured full.
            self.cwnd += newly_acked as f64;
        }
        if ctx.snd_una >= self.round_end {
            self.end_round(ctx);
        } else if self.mode == BbrMode::Drain {
            // Drain exit is checked per-ACK, not per-round: inflight
            // passes the target mid-round and waiting a full (queue-
            // inflated) RTT leaves throughput on the floor.
            self.apply_cwnd(ctx);
        }
        self.check_probe_rtt(ctx);
    }

    fn on_ecn_echo(&mut self, _ctx: &CcCtx) -> bool {
        // BBRv1 does not react to ECN marks.
        false
    }

    fn on_loss(&mut self, _ctx: &CcCtx) {
        // Loss is not a model signal in BBRv1, but Linux's bbr_set_cwnd
        // still packet-conserves through recovery: snap the inflight cap
        // back to the path model (dropping the gain headroom) so the
        // sender stops hammering a full buffer with the probe overshoot.
        // The next round edge re-applies the gain cycle from the filters.
        let bdp = self.bdp();
        if bdp > 0.0 {
            self.prior_cwnd = self.cwnd.max(self.prior_cwnd);
            self.cwnd = self.cwnd.min(bdp.max(4.0 * self.mss));
        }
    }

    fn on_rto(&mut self, ctx: &CcCtx) {
        // Persistent loss: conservative collapse; the model rebuilds the
        // window from the filters at the next round edge. The sender is
        // about to go-back-N (`snd_nxt` rewinds to `snd_una`), so the old
        // round-end snapshot sits a full window ahead — left in place it
        // would pin the 1-MSS window until the whole window was resent.
        // Restart the round at the rewind point instead, so the first
        // fresh ACK after the RTO re-applies the model.
        self.prior_cwnd = self.cwnd;
        self.cwnd = self.mss;
        self.round_end = ctx.snd_una;
        self.round_start = ctx.now;
        self.delivered_this_round = 0;
        self.last_ack_at = None;
        self.round_inst_bw = 0.0;
    }
}

/// Enum dispatch over the in-tree controllers: keeps [`TcpSender`]
/// (crate::TcpSender) `Clone` without boxing, and lets the compiler
/// inline the per-ACK hot path.
#[derive(Debug, Clone, Copy)]
pub enum CcAlgo {
    /// DCTCP (see [`DctcpCc`]).
    Dctcp(DctcpCc),
    /// ECN\* (see [`EcnStarCc`]).
    EcnStar(EcnStarCc),
    /// CUBIC (see [`CubicCc`]).
    Cubic(CubicCc),
    /// BBR (see [`BbrCc`]).
    Bbr(BbrCc),
}

impl CcAlgo {
    /// Build the controller a [`TcpConfig`](crate::TcpConfig) selects,
    /// with the configured initial window.
    pub fn from_config(cfg: &crate::TcpConfig) -> Self {
        let init = f64::from(cfg.init_cwnd) * f64::from(cfg.mss);
        CcAlgo::fresh(cfg.cc, cfg, init)
    }

    /// A fresh controller of kind `cc` with window `cwnd_bytes` —
    /// the mid-flow `cc-switch` entry point: the window (and therefore
    /// the flow's current sending rate) carries over, the algorithm
    /// state starts clean.
    pub fn fresh(cc: Cc, cfg: &crate::TcpConfig, cwnd_bytes: f64) -> Self {
        match cc {
            Cc::Dctcp => CcAlgo::Dctcp(DctcpCc::new(cwnd_bytes, cfg.dctcp_g)),
            Cc::EcnStar => CcAlgo::EcnStar(EcnStarCc::new(cwnd_bytes)),
            Cc::Cubic => CcAlgo::Cubic(CubicCc::new(cwnd_bytes)),
            Cc::Bbr => CcAlgo::Bbr(BbrCc::new(cwnd_bytes, cfg.mss)),
        }
    }

    /// A controller of kind `cc` seeded for a **mid-flow switch**: the
    /// window carries over and the window-based controllers start in
    /// congestion avoidance with `ssthresh = cwnd` (a switch must not
    /// slow-start-blast from an already-large window). BBR starts in
    /// Startup regardless — it has to re-measure the path model.
    pub fn carried(cc: Cc, cfg: &crate::TcpConfig, cwnd_bytes: f64) -> Self {
        let mut algo = CcAlgo::fresh(cc, cfg, cwnd_bytes);
        match &mut algo {
            CcAlgo::Dctcp(c) => {
                c.core.ssthresh = cwnd_bytes;
                c.core.phase = Phase::CongestionAvoidance;
            }
            CcAlgo::EcnStar(c) => {
                c.core.ssthresh = cwnd_bytes;
                c.core.phase = Phase::CongestionAvoidance;
            }
            CcAlgo::Cubic(c) => {
                c.ssthresh = cwnd_bytes;
                c.phase = Phase::CongestionAvoidance;
            }
            CcAlgo::Bbr(_) => {}
        }
        algo
    }

    /// The selector for the running controller.
    pub fn kind(&self) -> Cc {
        match self {
            CcAlgo::Dctcp(_) => Cc::Dctcp,
            CcAlgo::EcnStar(_) => Cc::EcnStar,
            CcAlgo::Cubic(_) => Cc::Cubic,
            CcAlgo::Bbr(_) => Cc::Bbr,
        }
    }

    fn as_dyn(&self) -> &dyn CongestionControl {
        match self {
            CcAlgo::Dctcp(c) => c,
            CcAlgo::EcnStar(c) => c,
            CcAlgo::Cubic(c) => c,
            CcAlgo::Bbr(c) => c,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn CongestionControl {
        match self {
            CcAlgo::Dctcp(c) => c,
            CcAlgo::EcnStar(c) => c,
            CcAlgo::Cubic(c) => c,
            CcAlgo::Bbr(c) => c,
        }
    }
}

impl CongestionControl for CcAlgo {
    fn name(&self) -> &'static str {
        self.as_dyn().name()
    }
    fn state(&self) -> &'static str {
        self.as_dyn().state()
    }
    fn cwnd(&self) -> f64 {
        self.as_dyn().cwnd()
    }
    fn pacing_rate(&self) -> Option<f64> {
        self.as_dyn().pacing_rate()
    }
    fn in_recovery(&self) -> bool {
        self.as_dyn().in_recovery()
    }
    fn ecn_capable(&self) -> bool {
        self.as_dyn().ecn_capable()
    }
    fn alpha(&self) -> f64 {
        self.as_dyn().alpha()
    }
    fn on_ack(&mut self, newly_acked: u64, ece: bool, ctx: &CcCtx) {
        self.as_dyn_mut().on_ack(newly_acked, ece, ctx);
    }
    fn on_dup_inflate(&mut self, ctx: &CcCtx) {
        self.as_dyn_mut().on_dup_inflate(ctx);
    }
    fn on_fresh_ack(&mut self, newly_acked: u64, ctx: &CcCtx) {
        self.as_dyn_mut().on_fresh_ack(newly_acked, ctx);
    }
    fn on_ecn_echo(&mut self, ctx: &CcCtx) -> bool {
        self.as_dyn_mut().on_ecn_echo(ctx)
    }
    fn on_loss(&mut self, ctx: &CcCtx) {
        self.as_dyn_mut().on_loss(ctx);
    }
    fn on_rto(&mut self, ctx: &CcCtx) {
        self.as_dyn_mut().on_rto(ctx);
    }
    fn on_sent(&mut self, seq: u64, bytes: u32, is_rtx: bool, ctx: &CcCtx) {
        self.as_dyn_mut().on_sent(seq, bytes, is_rtx, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(now: Time, snd_una: u64, snd_nxt: u64) -> CcCtx {
        CcCtx {
            now,
            snd_una,
            snd_nxt,
            mss: 1000,
            dupack_thresh: 3,
            srtt: Some(Time::from_us(100)),
            latest_rtt: Some(Time::from_us(100)),
        }
    }

    #[test]
    fn cc_names_round_trip() {
        for cc in [Cc::Dctcp, Cc::EcnStar, Cc::Cubic, Cc::Bbr] {
            assert_eq!(Cc::from_name(cc.name()), Some(cc));
        }
        assert_eq!(Cc::from_name("reno"), None);
    }

    #[test]
    fn cubic_slow_start_then_cubic_region() {
        let mut c = CubicCc::new(10_000.0);
        // Loss puts it in recovery, then CA.
        c.on_loss(&ctx(Time::ZERO, 0, 10_000));
        assert_eq!(c.state(), "recovery");
        c.on_fresh_ack(1000, &ctx(Time::from_us(100), 11_000, 20_000));
        assert_eq!(c.state(), "congestion-avoidance");
        let w0 = c.cwnd();
        // Far from w_max the curve climbs; near t=K it flattens.
        let mut now = Time::from_us(200);
        for i in 0..50u64 {
            now = now.saturating_add(Time::from_us(100));
            c.on_fresh_ack(1000, &ctx(now, 12_000 + i * 1000, 70_000 + i * 1000));
        }
        assert!(c.cwnd() > w0, "cubic region must grow: {} -> {}", w0, c.cwnd());
    }

    #[test]
    fn cubic_fast_convergence_shrinks_ceiling() {
        let mut c = CubicCc::new(100_000.0);
        c.on_loss(&ctx(Time::ZERO, 0, 100_000));
        let w_max1 = c.w_max;
        // Second loss below the old ceiling: fast convergence shrinks
        // the anchor below the current window.
        c.on_fresh_ack(1000, &ctx(Time::from_ms(1), 101_000, 150_000));
        c.on_loss(&ctx(Time::from_ms(2), 101_000, 150_000));
        assert!(c.w_max < w_max1, "{} < {}", c.w_max, w_max1);
        assert!(c.w_max < 100_000.0 * CUBIC_BETA + 1.0);
    }

    #[test]
    fn bbr_starts_in_startup_and_ramps() {
        let mut b = BbrCc::new(10_000.0, 1000);
        assert_eq!(b.state(), "startup");
        let w0 = b.cwnd();
        b.on_ack(5000, false, &ctx(Time::from_us(100), 5000, 10_000));
        b.on_fresh_ack(5000, &ctx(Time::from_us(100), 5000, 10_000));
        assert!(b.cwnd() > w0);
    }

    /// ProbeRTT entry and exit, with the filter windows shrunk so the
    /// whole excursion fits in a few simulated milliseconds: the mode
    /// engages when the min-RTT sample goes stale, pins the window to
    /// 4 × MSS for `probe_rtt_duration`, then restores the prior window
    /// and re-stamps the filter so it does not immediately re-enter.
    #[test]
    fn bbr_probe_rtt_entry_and_exit() {
        let params = BbrParams {
            min_rtt_window: Time::from_ms(1),
            probe_rtt_duration: Time::from_us(500),
            ..BbrParams::default()
        };
        let mut b = BbrCc::with_params(8_000.0, 1000, params);
        // Seed the min-RTT filter at t = 100 µs.
        let seed = ctx(Time::from_us(100), 1000, 9000);
        b.on_ack(1000, false, &seed);
        b.on_fresh_ack(1000, &seed);
        assert_eq!(b.state(), "startup");

        // Worse samples never refresh the filter stamp; walk time
        // forward until the 1 ms window expires.
        let worse = |now: Time, una: u64| CcCtx {
            latest_rtt: Some(Time::from_us(400)),
            ..ctx(now, una, una + 8_000)
        };
        let mut una = 1000;
        let mut now = Time::from_us(100);
        while b.state() != "probe-rtt" {
            now = now.saturating_add(Time::from_us(100));
            assert!(now < Time::from_ms(3), "never entered ProbeRTT");
            una += 1000;
            let c = worse(now, una);
            b.on_ack(1000, false, &c);
            b.on_fresh_ack(1000, &c);
        }
        // Entry: stale strictly after 100 µs + 1 ms.
        assert!(now > Time::from_ms(1));
        assert_eq!(b.cwnd(), 4_000.0, "ProbeRTT floor is 4 × MSS");

        let entered = now;
        while b.state() == "probe-rtt" {
            now = now.saturating_add(Time::from_us(100));
            assert!(now < Time::from_ms(5), "never exited ProbeRTT");
            una += 1000;
            let c = worse(now, una);
            b.on_ack(1000, false, &c);
            b.on_fresh_ack(1000, &c);
        }
        // Exit: held the floor for the configured duration, restored
        // the pre-probe window, and the pipe was never marked full, so
        // it resumes Startup.
        assert!(now.saturating_sub(entered) >= Time::from_us(500));
        assert_eq!(b.state(), "startup");
        assert!(b.cwnd() > 4_000.0, "prior window restored on exit");
    }

    #[test]
    fn enum_dispatch_matches_inner() {
        let cfg = crate::TcpConfig::preset(Cc::Dctcp).sim();
        let algo = CcAlgo::from_config(&cfg);
        assert_eq!(algo.name(), "dctcp");
        assert_eq!(algo.kind(), Cc::Dctcp);
        assert!(algo.ecn_capable());
        assert_eq!(algo.state(), "slow-start");
    }
}
