//! ECN path validation — the RFC 9000 §13.4.2 state machine adapted to
//! this simulator's transport (SNIPPETS.md Snippet 2): a sender marks
//! its first flight ECT and watches what comes back. A path whose
//! middleboxes bleach or blackhole ECT, or spray CE onto everything,
//! must not be trusted with mark-driven congestion control — the
//! validator detects both failure shapes and falls the flow back to
//! loss-based behaviour (Not-ECT segments, echoes ignored).
//!
//! States: **testing** (first `TESTING_WINDOW_SEGS` segments' worth of
//! bytes) → **capable** (marks usable for the flow's lifetime) or
//! **failed** (fallback). Failure triggers, mirroring the RFC's two
//! rules:
//!
//! * *all-lost*: three RTOs expire during testing with nothing ever
//!   cumulatively acknowledged — an ECT blackhole ("if all ECN-capable
//!   packets … are declared lost", RFC 9000 §13.4.2.2, with the RFC's
//!   three-PTO testing period).
//! * *all-marked*: every testing-period ACK arrives with ECE set — a
//!   mark-everything middlebox. Real CE ratios under load are well
//!   below 1; a path that marks 100 % of a slow-start flight carries no
//!   congestion signal (the analogue of the RFC's "ECN-CE count
//!   exceeds ECT(0) sent" arithmetic check).
//!
//! Validation is **off by default** (`TcpConfig::ecn_validation`): when
//! disabled the validator is inert and the sender's wire behaviour is
//! bit-for-bit what it was before this type existed — the differential
//! suite pins that.

/// Per-path ECN validation verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnPathState {
    /// First testing window: segments are sent ECT, echoes are used,
    /// and the validator is counting.
    Testing,
    /// The path passed: marks flow both ways, ECN stays on.
    Capable,
    /// The path mangles marks: fall back to loss-based control.
    Failed,
}

impl EcnPathState {
    /// Stable lowercase name for telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            EcnPathState::Testing => "testing",
            EcnPathState::Capable => "capable",
            EcnPathState::Failed => "failed",
        }
    }
}

/// The testing window, in segments (RFC 9000 §13.4.2: "the first ten
/// outgoing packets on a path").
const TESTING_WINDOW_SEGS: u64 = 10;

/// Minimum ACK samples before the all-marked verdict may fire — a
/// couple of genuinely-marked ACKs at the head of a flow must not
/// condemn the path.
const MIN_ACK_SAMPLES: u64 = 4;

/// RTO expiries with zero forward progress that fail validation
/// (RFC 9000 §13.4.2: a testing period of three PTOs).
const MAX_TESTING_RTOS: u32 = 3;

/// ECN path validation state machine (see the module docs for the
/// transition rules). One per sender; drive it with
/// [`on_ack`](EcnValidator::on_ack) / [`on_rto`](EcnValidator::on_rto)
/// and gate mark usage on [`ecn_usable`](EcnValidator::ecn_usable).
#[derive(Debug, Clone, Copy)]
pub struct EcnValidator {
    enabled: bool,
    state: EcnPathState,
    /// Validation completes when `snd_una` passes this byte.
    testing_end: u64,
    acks_seen: u64,
    ce_acks: u64,
    rtos: u32,
}

impl EcnValidator {
    /// A validator for a flow with the given MSS. When `enabled` is
    /// false the validator reports `Capable` forever and changes
    /// nothing.
    pub fn new(enabled: bool, mss: u32) -> Self {
        EcnValidator {
            enabled,
            state: if enabled {
                EcnPathState::Testing
            } else {
                EcnPathState::Capable
            },
            testing_end: TESTING_WINDOW_SEGS * u64::from(mss),
            acks_seen: 0,
            ce_acks: 0,
            rtos: 0,
        }
    }

    /// Current verdict.
    pub fn state(&self) -> EcnPathState {
        self.state
    }

    /// True while ECN may be used on this path (testing or capable).
    /// When false the sender emits Not-ECT and ignores echoes.
    pub fn ecn_usable(&self) -> bool {
        self.state != EcnPathState::Failed
    }

    /// Observe an ACK (with the *raw* ECE echo, before any filtering).
    /// `snd_una` is the post-ACK cumulative mark. Returns the
    /// `(from, to)` state names when this ACK completed validation.
    pub fn on_ack(
        &mut self,
        snd_una: u64,
        ece: bool,
    ) -> Option<(&'static str, &'static str)> {
        if !self.enabled || self.state != EcnPathState::Testing {
            return None;
        }
        self.acks_seen += 1;
        if ece {
            self.ce_acks += 1;
        }
        if snd_una >= self.testing_end && self.acks_seen >= MIN_ACK_SAMPLES {
            let to = if self.ce_acks == self.acks_seen {
                EcnPathState::Failed
            } else {
                EcnPathState::Capable
            };
            let from = self.state;
            self.state = to;
            return Some((from.as_str(), to.as_str()));
        }
        None
    }

    /// Observe an RTO expiry. `snd_una` distinguishes "nothing has ever
    /// arrived" (blackhole suspicion) from mid-flow stalls. Returns the
    /// `(from, to)` names when this expiry failed validation.
    pub fn on_rto(&mut self, snd_una: u64) -> Option<(&'static str, &'static str)> {
        if !self.enabled || self.state != EcnPathState::Testing {
            return None;
        }
        if snd_una == 0 {
            self.rtos += 1;
            if self.rtos >= MAX_TESTING_RTOS {
                let from = self.state;
                self.state = EcnPathState::Failed;
                return Some((from.as_str(), self.state.as_str()));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_validator_is_inert() {
        let mut v = EcnValidator::new(false, 1460);
        assert_eq!(v.state(), EcnPathState::Capable);
        assert!(v.ecn_usable());
        for i in 0..100 {
            assert!(v.on_ack(i * 1460, true).is_none());
            assert!(v.on_rto(0).is_none());
        }
        assert!(v.ecn_usable());
    }

    #[test]
    fn clean_path_validates_capable() {
        let mut v = EcnValidator::new(true, 1000);
        assert_eq!(v.state(), EcnPathState::Testing);
        let mut done = None;
        for i in 1..=10u64 {
            done = v.on_ack(i * 1000, i == 1); // one real mark is fine
            if done.is_some() {
                break;
            }
        }
        assert_eq!(done, Some(("testing", "capable")));
        assert!(v.ecn_usable());
    }

    #[test]
    fn all_marked_path_fails() {
        let mut v = EcnValidator::new(true, 1000);
        let mut done = None;
        for i in 1..=10u64 {
            done = v.on_ack(i * 1000, true);
            if done.is_some() {
                break;
            }
        }
        assert_eq!(done, Some(("testing", "failed")));
        assert!(!v.ecn_usable());
    }

    #[test]
    fn needs_min_samples_before_verdict() {
        let mut v = EcnValidator::new(true, 1000);
        // One jumbo ACK past the testing window: too few samples.
        assert!(v.on_ack(20_000, true).is_none());
        assert_eq!(v.state(), EcnPathState::Testing);
        assert!(v.on_ack(21_000, true).is_none());
        assert!(v.on_ack(22_000, true).is_none());
        // Fourth sample completes — and all were marked.
        assert_eq!(v.on_ack(23_000, true), Some(("testing", "failed")));
    }

    #[test]
    fn three_barren_rtos_fail_validation() {
        let mut v = EcnValidator::new(true, 1000);
        assert!(v.on_rto(0).is_none());
        assert!(v.on_rto(0).is_none());
        assert_eq!(v.on_rto(0), Some(("testing", "failed")));
        assert!(!v.ecn_usable());
    }

    #[test]
    fn rtos_with_progress_do_not_fail() {
        let mut v = EcnValidator::new(true, 1000);
        for _ in 0..10 {
            assert!(v.on_rto(5000).is_none(), "mid-flow stalls are not blackholes");
        }
        assert_eq!(v.state(), EcnPathState::Testing);
    }

    #[test]
    fn verdict_is_terminal() {
        let mut v = EcnValidator::new(true, 1000);
        for i in 1..=10u64 {
            v.on_ack(i * 1000, false);
        }
        assert_eq!(v.state(), EcnPathState::Capable);
        assert!(v.on_ack(11_000, true).is_none(), "capable is final");
        assert!(v.on_rto(0).is_none());
        assert_eq!(v.state(), EcnPathState::Capable);
    }
}
