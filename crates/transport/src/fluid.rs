//! Rate-based byte accounting for the hybrid fluid fast path.
//!
//! The hybrid dispatch mode (`tcn-net`, DESIGN §7.7) advances bulk
//! traffic on *fluid-eligible* links — single-queue FIFO ports with no
//! buffer bound and no AQM, i.e. host NICs — without materializing a
//! queue or a per-packet `TxDone` event. What replaces the port is this
//! module's [`FluidCursor`]: the closed-form serialization recurrence of
//! an unbounded FIFO link,
//!
//! ```text
//! start_i  = max(arrival_i, free_at_{i-1})
//! free_at_i = start_i + tx_time(bytes_i)
//! depart_i  = free_at_i
//! ```
//!
//! which is *exact* — not an approximation — for that port shape: FIFO
//! order means packet `i` cannot start before `i-1` finishes, an
//! unbounded buffer means nothing is ever dropped, and no AQM means no
//! marking decision ever needs the queue state. All integer picosecond
//! arithmetic reuses [`Rate::tx_time`]'s round-up, so departure times
//! are bit-equal to the packet-level port's.
//!
//! Epoch exactness: the cursor only ever accelerates *event plumbing*
//! (no `TxDone` per packet); every AQM-relevant epoch — queue threshold
//! crossings, marks, drops — happens at switch ports, which are never
//! fluid-eligible. Sojourn-based TCN marking therefore sees exactly the
//! arrival times it would have seen packet-by-packet.

use tcn_sim::{Rate, Time};

/// The serialization cursor of a fluid-modeled link: when the NIC frees
/// up, plus running byte/packet totals.
///
/// ```
/// use tcn_sim::{Rate, Time};
/// use tcn_transport::FluidCursor;
///
/// let mut c = FluidCursor::new(Rate::from_gbps(10));
/// // Two back-to-back 1500 B packets offered at t=0: the second queues
/// // behind the first (1500 B at 10 Gbps = 1200 ns each).
/// assert_eq!(c.offer(Time::ZERO, 1500), Time::from_ns(1200));
/// assert_eq!(c.offer(Time::ZERO, 1500), Time::from_ns(2400));
/// // After an idle gap the link restarts at the arrival instant.
/// assert_eq!(c.offer(Time::from_us(10), 1500), Time::from_us(10) + Time::from_ns(1200));
/// ```
#[derive(Debug, Clone)]
pub struct FluidCursor {
    rate: Rate,
    free_at: Time,
    bytes: u64,
    packets: u64,
}

impl FluidCursor {
    /// An idle cursor serializing at `rate`.
    pub fn new(rate: Rate) -> Self {
        FluidCursor {
            rate,
            free_at: Time::ZERO,
            bytes: 0,
            packets: 0,
        }
    }

    /// Offer a packet of `bytes` wire bytes at `now`; returns its
    /// departure (serialization-complete) instant and advances the
    /// cursor. Offers must come in non-decreasing `now` order — FIFO is
    /// what makes the recurrence exact.
    #[inline]
    pub fn offer(&mut self, now: Time, bytes: u64) -> Time {
        let start = self.free_at.max(now);
        self.free_at = start.saturating_add(self.rate.tx_time(bytes));
        self.bytes += bytes;
        self.packets += 1;
        self.free_at
    }

    /// The instant the link finishes its current backlog (`<= now`
    /// means idle).
    #[inline]
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// True when every offered byte has finished serializing by `now`.
    #[inline]
    pub fn idle_at(&self, now: Time) -> bool {
        self.free_at <= now
    }

    /// Bytes the cursor still has in flight at `now` — the fluid
    /// equivalent of queue occupancy, by inverting the rate over the
    /// remaining busy period.
    pub fn backlog_bytes(&self, now: Time) -> u64 {
        if self.free_at <= now {
            return 0;
        }
        self.rate.bytes_in(self.free_at - now)
    }

    /// Total wire bytes offered so far.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total packets offered so far.
    #[inline]
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// The serialization rate.
    #[inline]
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Change the serialization rate; applies to packets offered from
    /// now on (in-flight bytes keep their already-computed departures,
    /// matching a packet-level port whose rate changes between
    /// dequeues).
    pub fn set_rate(&mut self, rate: Rate) {
        self.rate = rate;
    }

    /// Forget all progress: idle link, zero counters (a fluid link being
    /// reset alongside its simulation).
    pub fn reset(&mut self) {
        self.free_at = Time::ZERO;
        self.bytes = 0;
        self.packets = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The packet-level oracle: an explicit FIFO service loop over
    /// (arrival, bytes) pairs, one departure at a time.
    fn packet_level_departures(rate: Rate, offers: &[(Time, u64)]) -> Vec<Time> {
        let mut free = Time::ZERO;
        offers
            .iter()
            .map(|&(at, bytes)| {
                let start = free.max(at);
                free = start + rate.tx_time(bytes);
                free
            })
            .collect()
    }

    #[test]
    fn matches_packet_level_fifo_exactly() {
        // Shaped arrivals: bursts, idle gaps, mixed sizes — departure
        // times must be bit-equal to the explicit per-packet loop.
        let rate = Rate::from_gbps(10);
        let mut offers = Vec::new();
        let mut t = 0u64;
        let mut x = 0x1234_5678_9ABC_DEFu64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += x % 2_000; // 0..2 ns steps: mostly back-to-back
            if x % 7 == 0 {
                t += 5_000_000; // occasional 5 µs idle gap
            }
            let bytes = 64 + (x % 1437);
            offers.push((Time::from_ps(t), bytes));
        }
        let oracle = packet_level_departures(rate, &offers);
        let mut c = FluidCursor::new(rate);
        let fluid: Vec<Time> = offers.iter().map(|&(at, b)| c.offer(at, b)).collect();
        assert_eq!(fluid, oracle);
        assert_eq!(c.packets(), 500);
        assert_eq!(c.bytes(), offers.iter().map(|&(_, b)| b).sum::<u64>());
    }

    #[test]
    fn back_to_back_serializes_contiguously() {
        let mut c = FluidCursor::new(Rate::from_gbps(1));
        // 1500 B at 1 Gbps = 12 µs.
        assert_eq!(c.offer(Time::ZERO, 1500), Time::from_us(12));
        assert_eq!(c.offer(Time::from_us(3), 1500), Time::from_us(24));
        assert!(!c.idle_at(Time::from_us(23)));
        assert!(c.idle_at(Time::from_us(24)));
    }

    #[test]
    fn idle_gap_restarts_at_arrival() {
        let mut c = FluidCursor::new(Rate::from_gbps(1));
        c.offer(Time::ZERO, 1500);
        let dep = c.offer(Time::from_ms(1), 1500);
        assert_eq!(dep, Time::from_ms(1) + Time::from_us(12));
    }

    #[test]
    fn backlog_inverts_rate() {
        let mut c = FluidCursor::new(Rate::from_gbps(1));
        c.offer(Time::ZERO, 1500);
        c.offer(Time::ZERO, 1500);
        // At t=12 µs exactly one packet's worth remains.
        assert_eq!(c.backlog_bytes(Time::from_us(12)), 1500);
        assert_eq!(c.backlog_bytes(Time::from_us(24)), 0);
    }

    #[test]
    fn rate_change_applies_to_later_offers() {
        let mut c = FluidCursor::new(Rate::from_gbps(1));
        assert_eq!(c.offer(Time::ZERO, 1500), Time::from_us(12));
        c.set_rate(Rate::from_gbps(10));
        // Second packet starts at 12 µs but serializes 10× faster.
        assert_eq!(c.offer(Time::ZERO, 1500), Time::from_us(12) + Time::from_ns(1200));
    }

    #[test]
    fn reset_returns_to_idle() {
        let mut c = FluidCursor::new(Rate::from_gbps(10));
        c.offer(Time::ZERO, 1500);
        c.reset();
        assert!(c.idle_at(Time::ZERO));
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.packets(), 0);
        assert_eq!(c.offer(Time::ZERO, 1500), Time::from_ns(1200));
    }
}
