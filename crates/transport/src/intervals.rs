//! Received-byte interval tracking for the receiver's out-of-order
//! buffer: a sorted set of disjoint `[start, end)` ranges with O(n)
//! insertion (n = number of gaps, small in practice).

/// A set of disjoint, sorted half-open byte ranges.
#[derive(Debug, Default, Clone)]
pub struct ByteIntervals {
    /// Sorted, disjoint, non-adjacent `[start, end)` ranges.
    ranges: Vec<(u64, u64)>,
}

impl ByteIntervals {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `[start, end)`, merging with any overlapping or adjacent
    /// ranges. Returns the number of newly covered bytes.
    pub fn insert(&mut self, start: u64, end: u64) -> u64 {
        assert!(start <= end, "inverted range");
        if start == end {
            return 0;
        }
        let before: u64 = self.covered();
        // Find all ranges overlapping or adjacent to [start, end).
        let mut new_start = start;
        let mut new_end = end;
        let mut i = 0;
        while i < self.ranges.len() {
            let (s, e) = self.ranges[i];
            if e < new_start || s > new_end {
                i += 1;
                continue;
            }
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            self.ranges.remove(i);
        }
        let pos = self
            .ranges
            .partition_point(|&(s, _)| s < new_start);
        self.ranges.insert(pos, (new_start, new_end));
        self.covered() - before
    }

    /// The next byte expected in order (end of the range starting at 0,
    /// or 0 if nothing contiguous from the origin has arrived).
    pub fn next_expected(&self) -> u64 {
        match self.ranges.first() {
            Some(&(0, end)) => end,
            _ => 0,
        }
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// True if `[0, size)` is fully covered.
    pub fn is_complete(&self, size: u64) -> bool {
        self.next_expected() >= size
    }

    /// Number of disjoint ranges (1 = in order, >1 = gaps).
    pub fn fragments(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_growth() {
        let mut iv = ByteIntervals::new();
        assert_eq!(iv.insert(0, 1000), 1000);
        assert_eq!(iv.insert(1000, 2000), 1000);
        assert_eq!(iv.next_expected(), 2000);
        assert_eq!(iv.fragments(), 1);
    }

    #[test]
    fn gap_then_fill() {
        let mut iv = ByteIntervals::new();
        iv.insert(0, 1000);
        iv.insert(2000, 3000); // gap at [1000, 2000)
        assert_eq!(iv.next_expected(), 1000);
        assert_eq!(iv.fragments(), 2);
        assert_eq!(iv.insert(1000, 2000), 1000);
        assert_eq!(iv.next_expected(), 3000);
        assert_eq!(iv.fragments(), 1);
    }

    #[test]
    fn duplicate_covers_nothing() {
        let mut iv = ByteIntervals::new();
        iv.insert(0, 1000);
        assert_eq!(iv.insert(0, 1000), 0);
        assert_eq!(iv.insert(500, 800), 0);
        assert_eq!(iv.covered(), 1000);
    }

    #[test]
    fn partial_overlap_counts_new_bytes_only() {
        let mut iv = ByteIntervals::new();
        iv.insert(0, 1000);
        assert_eq!(iv.insert(500, 1500), 500);
        assert_eq!(iv.next_expected(), 1500);
    }

    #[test]
    fn out_of_order_before_origin_packet() {
        let mut iv = ByteIntervals::new();
        iv.insert(3000, 4000);
        assert_eq!(iv.next_expected(), 0);
        iv.insert(0, 3000);
        assert_eq!(iv.next_expected(), 4000);
    }

    #[test]
    fn adjacent_merge() {
        let mut iv = ByteIntervals::new();
        iv.insert(0, 100);
        iv.insert(200, 300);
        iv.insert(100, 200);
        assert_eq!(iv.fragments(), 1);
        assert_eq!(iv.covered(), 300);
    }

    #[test]
    fn completion() {
        let mut iv = ByteIntervals::new();
        iv.insert(0, 999);
        assert!(!iv.is_complete(1000));
        iv.insert(999, 1000);
        assert!(iv.is_complete(1000));
        // Over-coverage still complete.
        assert!(iv.is_complete(500));
    }

    #[test]
    fn many_gaps_fill_random_order() {
        let mut iv = ByteIntervals::new();
        // Insert even segments first, then odd.
        for i in (0..100u64).step_by(2) {
            iv.insert(i * 100, (i + 1) * 100);
        }
        assert_eq!(iv.fragments(), 50);
        for i in (1..100u64).step_by(2) {
            iv.insert(i * 100, (i + 1) * 100);
        }
        assert_eq!(iv.fragments(), 1);
        assert_eq!(iv.covered(), 10_000);
        assert_eq!(iv.next_expected(), 10_000);
    }

    #[test]
    fn empty_insert_noop() {
        let mut iv = ByteIntervals::new();
        assert_eq!(iv.insert(5, 5), 0);
        assert_eq!(iv.covered(), 0);
    }
}
