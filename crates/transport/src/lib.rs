//! `tcn-transport` — the ECN-capable datacenter transports the paper
//! evaluates over.
//!
//! Two congestion-control variants are implemented as pure state
//! machines (no I/O, fully unit-testable):
//!
//! * **ECN\*** ([`CcVariant::EcnStar`]) — regular ECN-enabled TCP that
//!   "simply cuts the window by half in the presence of an ECN mark"
//!   (paper §2.1 fn 2), at most once per window. λ = 1 in the threshold
//!   formulas. The paper calls it the most challenging transport because
//!   it has no smoothing (§6.2.2).
//! * **DCTCP** ([`CcVariant::Dctcp`]) — Alizadeh et al., SIGCOMM 2010:
//!   the receiver echoes CE per packet, the sender maintains the marked
//!   fraction estimate `α ← (1−g)·α + g·F` per window and cuts
//!   `cwnd ← cwnd·(1 − α/2)` at most once per window.
//!
//! Both share the same loss machinery: slow start, congestion avoidance,
//! fast retransmit on three duplicate ACKs with a simplified Reno-style
//! recovery, and an RTO with Jacobson/Karn estimation clamped at a
//! configurable `RTO_min` (10 ms testbed / 5 ms simulation, per the
//! paper's setups).
//!
//! Deliberate simplifications (documented per DESIGN.md): no SYN/FIN
//! handshake (flows start with data, as in the ns-2 models this paper's
//! simulations used), no delayed ACKs, no SACK, no receive-window flow
//! control. These do not affect the congestion dynamics the paper
//! studies.
//!
//! The state machines communicate with their host through values: every
//! input (`start` / `on_ack` / `on_timer`) returns a [`SenderOutput`]
//! with packets to transmit and the current retransmission deadline for
//! the host to arm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fluid;
pub mod intervals;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use fluid::FluidCursor;
pub use intervals::ByteIntervals;
pub use receiver::TcpReceiver;
pub use rtt::RttEstimator;
pub use sender::{CcVariant, SenderOutput, TcpConfig, TcpSender};
