//! `tcn-transport` — the ECN-capable datacenter transports the paper
//! evaluates over, behind a pluggable congestion-control API.
//!
//! The sender ([`TcpSender`]) is reliability machinery only: sequence
//! tracking, fast retransmit on three duplicate ACKs with simplified
//! Reno-style recovery, go-back-N RTO with Jacobson/Karn estimation
//! clamped at a configurable `RTO_min` (10 ms testbed / 5 ms
//! simulation, per the paper's setups). Window policy is delegated to
//! a [`CongestionControl`] implementation, selected per flow via
//! [`Cc`]:
//!
//! * **ECN\*** ([`Cc::EcnStar`]) — regular ECN-enabled TCP that
//!   "simply cuts the window by half in the presence of an ECN mark"
//!   (paper §2.1 fn 2), at most once per window. λ = 1 in the threshold
//!   formulas. The paper calls it the most challenging transport because
//!   it has no smoothing (§6.2.2).
//! * **DCTCP** ([`Cc::Dctcp`]) — Alizadeh et al., SIGCOMM 2010:
//!   the receiver echoes CE per packet, the sender maintains the marked
//!   fraction estimate `α ← (1−g)·α + g·F` per window and cuts
//!   `cwnd ← cwnd·(1 − α/2)` at most once per window.
//! * **CUBIC** ([`Cc::Cubic`]) — RFC 8312: the loss-based tenant, not
//!   ECN-capable here, for the mixed-tenant coexistence experiments.
//! * **BBR** ([`Cc::Bbr`]) — Cardwell et al.: model-based, with the
//!   Startup/Drain/ProbeBW/ProbeRTT state machine over windowed
//!   max-bandwidth / min-RTT filters.
//!
//! ECN usage is additionally gated by RFC 9000 §13.4.2-style path
//! validation ([`EcnValidator`], off by default): a path that bleaches
//! or sprays marks demotes the flow to loss-based behaviour.
//!
//! Deliberate simplifications (documented per DESIGN.md): no SYN/FIN
//! handshake (flows start with data, as in the ns-2 models this paper's
//! simulations used), no delayed ACKs, no SACK, no receive-window flow
//! control. These do not affect the congestion dynamics the paper
//! studies.
//!
//! The state machines communicate with their host through values: every
//! input (`start` / `on_ack` / `on_timer`) returns a [`SenderOutput`]
//! with packets to transmit and the current retransmission deadline for
//! the host to arm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod ecn;
pub mod fluid;
pub mod intervals;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use cc::{BbrCc, BbrParams, Cc, CcAlgo, CcCtx, CongestionControl, CubicCc, DctcpCc, EcnStarCc};
pub use ecn::{EcnPathState, EcnValidator};
pub use fluid::FluidCursor;
pub use intervals::ByteIntervals;
pub use receiver::TcpReceiver;
pub use rtt::RttEstimator;
pub use sender::{SenderOutput, TcpConfig, TcpPreset, TcpSender};
