//! The TCP receiver: cumulative ACK generation with per-packet ECN echo
//! (the DCTCP receiver state machine with delayed-ACK factor m = 1) and
//! flow-completion detection.

use tcn_core::{FlowId, Packet, PacketKind, TcnError};
use tcn_sim::Time;

use crate::intervals::ByteIntervals;

/// A TCP receiver for one flow of `size` bytes.
#[derive(Debug, Clone)]
pub struct TcpReceiver {
    flow: FlowId,
    /// Receiver's host id (source of ACKs).
    host: u32,
    /// Sender's host id (destination of ACKs).
    peer: u32,
    size: u64,
    received: ByteIntervals,
    completed_at: Option<Time>,
    /// Wire size of a pure ACK.
    ack_size: u32,
    /// Diagnostics: CE-marked data packets seen.
    ce_seen: u64,
    data_pkts: u64,
}

impl TcpReceiver {
    /// A receiver expecting `size` bytes of flow `flow`, running on host
    /// `host`, acking back to `peer`. ACKs are 40-byte header-only
    /// packets.
    pub fn new(flow: FlowId, host: u32, peer: u32, size: u64) -> Self {
        assert!(size > 0, "zero-size flow");
        TcpReceiver {
            flow,
            host,
            peer,
            size,
            received: ByteIntervals::new(),
            completed_at: None,
            ack_size: 40,
            ce_seen: 0,
            data_pkts: 0,
        }
    }

    /// Process a data packet, producing the cumulative ACK to send back.
    /// Every data packet is acknowledged immediately (no delayed ACKs);
    /// the ACK echoes the packet's own CE mark — the DCTCP receiver rule
    /// with m = 1, which also serves ECN\* since its sender reacts at
    /// most once per window anyway.
    ///
    /// # Errors
    /// [`TcnError::AuditViolation`] if the packet is not a data segment
    /// of this flow — a routing or dispatch bug upstream.
    pub fn on_data(&mut self, pkt: &Packet, now: Time) -> Result<Packet, TcnError> {
        if pkt.flow != self.flow {
            return Err(TcnError::audit(format!(
                "foreign packet: receiver of flow {} fed flow {}",
                self.flow.0, pkt.flow.0
            )));
        }
        let (seq, payload) = match pkt.kind {
            PacketKind::Data { seq, payload } => (seq, payload),
            _ => return Err(TcnError::audit("receiver fed a non-data packet")),
        };
        self.data_pkts += 1;
        if pkt.ecn.is_ce() {
            self.ce_seen += 1;
        }
        self.received.insert(seq, seq + u64::from(payload));
        if self.completed_at.is_none() && self.received.is_complete(self.size) {
            self.completed_at = Some(now);
        }
        let mut ack = Packet::ack(
            self.flow,
            self.host,
            self.peer,
            self.received.next_expected(),
            pkt.ecn.is_ce(),
            self.ack_size,
        );
        ack.birth_ts = now;
        // ACKs inherit the data packet's class so they ride the same
        // service queue on the reverse path.
        ack.dscp = pkt.dscp;
        Ok(ack)
    }

    /// True once all `size` bytes have arrived.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// When the last in-order byte arrived (the FCT endpoint).
    pub fn completed_at(&self) -> Option<Time> {
        self.completed_at
    }

    /// Bytes received so far (unique).
    pub fn bytes_received(&self) -> u64 {
        self.received.covered()
    }

    /// Fraction of data packets that carried CE (diagnostics).
    pub fn ce_fraction(&self) -> f64 {
        if self.data_pkts == 0 {
            0.0
        } else {
            self.ce_seen as f64 / self.data_pkts as f64
        }
    }

    /// Flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcn_core::EcnCodepoint;

    fn data(seq: u64, payload: u32) -> Packet {
        Packet::data(FlowId(9), 3, 7, seq, payload, 40)
    }

    #[test]
    fn acks_cumulative_in_order() {
        let mut r = TcpReceiver::new(FlowId(9), 7, 3, 4380);
        let ack = r.on_data(&data(0, 1460), Time::from_us(1)).unwrap();
        match ack.kind {
            PacketKind::Ack { cum_ack, ece } => {
                assert_eq!(cum_ack, 1460);
                assert!(!ece);
            }
            _ => panic!(),
        }
        assert_eq!(ack.src, 7);
        assert_eq!(ack.dst, 3);
    }

    #[test]
    fn out_of_order_generates_dup_acks() {
        let mut r = TcpReceiver::new(FlowId(9), 7, 3, 14_600);
        r.on_data(&data(0, 1460), Time::from_us(1)).unwrap();
        // Segment at 1460 lost; later segments repeat cum_ack 1460.
        for seq in [2920u64, 4380, 5840] {
            let ack = r.on_data(&data(seq, 1460), Time::from_us(2)).unwrap();
            match ack.kind {
                PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 1460),
                _ => panic!(),
            }
        }
        // Retransmission fills the hole → jump.
        let ack = r.on_data(&data(1460, 1460), Time::from_us(3)).unwrap();
        match ack.kind {
            PacketKind::Ack { cum_ack, .. } => assert_eq!(cum_ack, 7300),
            _ => panic!(),
        }
    }

    #[test]
    fn echoes_ce_per_packet() {
        let mut r = TcpReceiver::new(FlowId(9), 7, 3, 14_600);
        let mut marked = data(0, 1460);
        marked.ecn = EcnCodepoint::Ce;
        let ack = r.on_data(&marked, Time::from_us(1)).unwrap();
        match ack.kind {
            PacketKind::Ack { ece, .. } => assert!(ece),
            _ => panic!(),
        }
        // Next unmarked packet: echo clears (m = 1 state machine).
        let ack = r.on_data(&data(1460, 1460), Time::from_us(2)).unwrap();
        match ack.kind {
            PacketKind::Ack { ece, .. } => assert!(!ece),
            _ => panic!(),
        }
        assert!((r.ce_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn completion_at_last_inorder_byte() {
        let mut r = TcpReceiver::new(FlowId(9), 7, 3, 2920);
        r.on_data(&data(1460, 1460), Time::from_us(1)).unwrap();
        assert!(!r.is_complete());
        r.on_data(&data(0, 1460), Time::from_us(9)).unwrap();
        assert!(r.is_complete());
        assert_eq!(r.completed_at(), Some(Time::from_us(9)));
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let mut r = TcpReceiver::new(FlowId(9), 7, 3, 2920);
        r.on_data(&data(0, 1460), Time::from_us(1)).unwrap();
        r.on_data(&data(0, 1460), Time::from_us(2)).unwrap();
        assert_eq!(r.bytes_received(), 1460);
        assert!(!r.is_complete());
    }

    #[test]
    fn ack_inherits_dscp() {
        let mut r = TcpReceiver::new(FlowId(9), 7, 3, 2920);
        let mut p = data(0, 1460);
        p.dscp = 5;
        let ack = r.on_data(&p, Time::from_us(1)).unwrap();
        assert_eq!(ack.dscp, 5);
    }

    #[test]
    fn completion_time_not_overwritten() {
        let mut r = TcpReceiver::new(FlowId(9), 7, 3, 1460);
        r.on_data(&data(0, 1460), Time::from_us(5)).unwrap();
        // A duplicate after completion must not move the FCT endpoint.
        r.on_data(&data(0, 1460), Time::from_us(50)).unwrap();
        assert_eq!(r.completed_at(), Some(Time::from_us(5)));
    }

    #[test]
    fn rejects_foreign_flow() {
        let mut r = TcpReceiver::new(FlowId(9), 7, 3, 1460);
        let p = Packet::data(FlowId(8), 3, 7, 0, 1460, 40);
        let err = r.on_data(&p, Time::ZERO).expect_err("foreign packet");
        assert_eq!(err.kind(), "audit");
        assert!(err.to_string().contains("foreign packet"), "{err}");
    }

    #[test]
    fn rejects_non_data_packet() {
        let mut r = TcpReceiver::new(FlowId(9), 7, 3, 1460);
        let ack = Packet::ack(FlowId(9), 3, 7, 0, false, 40);
        let err = r.on_data(&ack, Time::ZERO).expect_err("non-data packet");
        assert_eq!(err.kind(), "audit");
    }
}
