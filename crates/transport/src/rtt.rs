//! Jacobson/Karels round-trip estimation with Karn's rule, as in every
//! real TCP: `SRTT ← 7/8·SRTT + 1/8·sample`,
//! `RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − sample|`,
//! `RTO = max(RTO_min, SRTT + 4·RTTVAR)`, doubled on each backoff and
//! clamped to a configurable `RTO_max` cap so a dead path escalates to
//! long, bounded probes instead of hammering the event queue.

use tcn_sim::Time;

/// RTT estimator and RTO calculator.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<Time>,
    rttvar: Time,
    rto_min: Time,
    rto_init: Time,
    rto_max: Time,
    /// Exponential backoff multiplier (1 after a fresh sample).
    backoff: u32,
}

impl RttEstimator {
    /// Estimator with the given floor, pre-first-sample RTO and
    /// backoff ceiling (`rto_max`; pass [`Time::MAX`] for no cap).
    pub fn new(rto_min: Time, rto_init: Time, rto_max: Time) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Time::ZERO,
            rto_min,
            rto_init,
            rto_max,
            backoff: 0,
        }
    }

    /// Fold in a fresh RTT sample (callers must respect Karn's rule and
    /// never sample retransmitted segments). Resets any backoff.
    pub fn sample(&mut self, rtt: Time) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3 + err) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        self.backoff = 0;
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Time {
        let base = match self.srtt {
            None => self.rto_init,
            Some(srtt) => srtt + self.rttvar * 4,
        };
        let backed_off = base.saturating_mul(1u64 << self.backoff.min(16));
        backed_off.max(self.rto_min).min(self.rto_max)
    }

    /// Double the RTO (after an expiry — Karn's backoff), saturating at
    /// the configured `rto_max` cap.
    pub fn back_off(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Smoothed RTT, if sampled.
    pub fn srtt(&self) -> Option<Time> {
        self.srtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_used_before_samples() {
        let e = RttEstimator::new(Time::from_ms(10), Time::from_ms(3000), Time::MAX);
        assert_eq!(e.rto(), Time::from_ms(3000));
    }

    #[test]
    fn first_sample_seeds_srtt() {
        let mut e = RttEstimator::new(Time::from_us(1), Time::from_ms(3000), Time::MAX);
        e.sample(Time::from_us(100));
        assert_eq!(e.srtt(), Some(Time::from_us(100)));
        // RTO = srtt + 4*rttvar = 100 + 4*50 = 300 us.
        assert_eq!(e.rto(), Time::from_us(300));
    }

    #[test]
    fn rto_floor_applies() {
        let mut e = RttEstimator::new(Time::from_ms(10), Time::from_ms(3000), Time::MAX);
        e.sample(Time::from_us(100));
        assert_eq!(e.rto(), Time::from_ms(10), "RTO_min dominates in DCs");
    }

    #[test]
    fn srtt_converges_to_stable_rtt() {
        let mut e = RttEstimator::new(Time::from_us(1), Time::from_ms(1), Time::MAX);
        for _ in 0..100 {
            e.sample(Time::from_us(200));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_us_f64() - 200.0).abs() < 1.0);
        // Variance collapses → RTO approaches SRTT.
        assert!(e.rto() < Time::from_us(250));
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::new(Time::from_ms(10), Time::from_ms(3000), Time::MAX);
        e.sample(Time::from_ms(20)); // RTO = 20 + 4*10 = 60 ms
        let base = e.rto();
        e.back_off();
        assert_eq!(e.rto(), base * 2);
        e.back_off();
        assert_eq!(e.rto(), base * 4);
        e.sample(Time::from_ms(20));
        // A fresh sample clears the backoff; the repeated equal sample
        // also shrinks RTTVAR, so the RTO is at most the old base.
        assert!(e.rto() <= base);
        assert!(e.rto() >= Time::from_ms(20));
    }

    #[test]
    fn backoff_doubles_then_caps() {
        // The satellite contract: 60 → 120 → 240 → cap 250 → stays 250,
        // and a fresh sample drops back below the cap.
        let cap = Time::from_ms(250);
        let mut e = RttEstimator::new(Time::from_ms(10), Time::from_ms(3000), cap);
        e.sample(Time::from_ms(20)); // RTO = 20 + 4*10 = 60 ms
        let mut expected = vec![];
        for _ in 0..5 {
            expected.push(e.rto());
            e.back_off();
        }
        assert_eq!(
            expected,
            vec![
                Time::from_ms(60),
                Time::from_ms(120),
                Time::from_ms(240),
                cap,
                cap
            ]
        );
        e.sample(Time::from_ms(20));
        assert!(e.rto() < cap, "fresh sample clears the backoff");
    }

    #[test]
    fn cap_applies_before_first_sample() {
        let e = RttEstimator::new(Time::from_ms(10), Time::from_ms(3000), Time::from_ms(500));
        assert_eq!(e.rto(), Time::from_ms(500));
    }

    #[test]
    fn backoff_saturates() {
        let mut e = RttEstimator::new(Time::from_ms(5), Time::from_ms(100), Time::MAX);
        for _ in 0..100 {
            e.back_off();
        }
        // Must not overflow.
        assert!(e.rto() >= Time::from_ms(5));
    }
}
