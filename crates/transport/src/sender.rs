//! The TCP sender: reliability machinery (sequence tracking, fast
//! retransmit, RTO, go-back-N) around a pluggable
//! [`CongestionControl`] policy, with ECN path validation
//! ([`EcnValidator`]) gating mark usage.
//!
//! The sender owns *what* is outstanding and *when* to retransmit; the
//! configured controller (DCTCP, ECN\*, CUBIC, BBR — see
//! [`crate::cc`]) owns *how much* may be in flight. All entry points
//! keep the zero-alloc `*_into` discipline: the host passes reusable
//! [`SenderOutput`] scratch and no per-event allocation happens on the
//! steady-state path.

use tcn_core::{EcnCodepoint, FlowId, Packet};
use tcn_sim::Time;

use crate::cc::{Cc, CcAlgo, CcCtx, CongestionControl};
use crate::ecn::{EcnPathState, EcnValidator};
use crate::rtt::RttEstimator;

/// Transport configuration shared by a fleet of flows.
///
/// Build one with the fluent preset builder —
/// `TcpConfig::preset(Cc::Dctcp).sim()` /
/// `TcpConfig::preset(Cc::Cubic).testbed()` — then toggle knobs with
/// the `with_*` methods.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Congestion-control algorithm.
    pub cc: Cc,
    /// DCTCP α estimation gain (ignored by other controllers; the
    /// paper and the DCTCP paper use 1/16).
    pub dctcp_g: f64,
    /// Run RFC 9000 §13.4.2-style ECN path validation: probe the path
    /// during the first window and fall back to loss-based control if
    /// marks are mangled. Off by default (the paper's paths are clean).
    pub ecn_validation: bool,
    /// Maximum segment (payload) size in bytes.
    pub mss: u32,
    /// Wire header overhead per packet (TCP/IP + Ethernet framing).
    pub header: u32,
    /// Initial congestion window in segments (paper: 10 on the testbed
    /// kernels, 16 in simulations).
    pub init_cwnd: u32,
    /// Minimum RTO (paper: 10 ms testbed, 5 ms simulation).
    pub rto_min: Time,
    /// RTO before the first RTT sample (paper simulation: 5 ms).
    pub rto_init: Time,
    /// Cap on the exponentially backed-off RTO, so repeated losses on a
    /// dead path escalate to bounded probes instead of doubling without
    /// limit (and a recovered path is re-probed promptly).
    pub rto_max: Time,
    /// Number of duplicate ACKs that trigger fast retransmit.
    pub dupack_thresh: u32,
}

/// Intermediate of the fluent [`TcpConfig::preset`] builder: pick the
/// algorithm, then finish with the environment —
/// [`sim`](TcpPreset::sim) or [`testbed`](TcpPreset::testbed).
#[derive(Debug, Clone, Copy)]
pub struct TcpPreset {
    cc: Cc,
}

impl TcpPreset {
    /// The paper's simulation environment: MSS 1460 B + 40 B headers,
    /// initial window 16, RTO_min = RTO_init = 5 ms.
    pub fn sim(self) -> TcpConfig {
        TcpConfig {
            cc: self.cc,
            dctcp_g: 1.0 / 16.0,
            ecn_validation: false,
            mss: 1460,
            header: 40,
            init_cwnd: 16,
            rto_min: Time::from_ms(5),
            rto_init: Time::from_ms(5),
            rto_max: Time::from_ms(320),
            dupack_thresh: 3,
        }
    }

    /// The paper's testbed environment: initial window 10,
    /// RTO_min 10 ms.
    pub fn testbed(self) -> TcpConfig {
        TcpConfig {
            init_cwnd: 10,
            rto_min: Time::from_ms(10),
            rto_init: Time::from_ms(10),
            rto_max: Time::from_ms(640),
            ..self.sim()
        }
    }
}

impl TcpConfig {
    /// Start the fluent builder: pick the congestion controller, then
    /// the environment preset (`.sim()` / `.testbed()`).
    pub fn preset(cc: Cc) -> TcpPreset {
        TcpPreset { cc }
    }

    /// Toggle ECN path validation (see [`EcnValidator`]).
    pub fn with_ecn_validation(mut self, on: bool) -> Self {
        self.ecn_validation = on;
        self
    }

    /// Override the DCTCP α gain.
    pub fn with_dctcp_gain(mut self, g: f64) -> Self {
        self.dctcp_g = g;
        self
    }

    /// The paper's simulation configuration for DCTCP.
    #[deprecated(note = "use `TcpConfig::preset(Cc::Dctcp).sim()`")]
    pub fn sim_dctcp() -> Self {
        TcpConfig::preset(Cc::Dctcp).sim()
    }

    /// The paper's simulation configuration for ECN\*.
    #[deprecated(note = "use `TcpConfig::preset(Cc::EcnStar).sim()`")]
    pub fn sim_ecn_star() -> Self {
        TcpConfig::preset(Cc::EcnStar).sim()
    }

    /// The paper's testbed configuration (DCTCP).
    #[deprecated(note = "use `TcpConfig::preset(Cc::Dctcp).testbed()`")]
    pub fn testbed_dctcp() -> Self {
        TcpConfig::preset(Cc::Dctcp).testbed()
    }

    /// λ for the standard threshold formulas: 1 for ECN\*; for DCTCP the
    /// paper configures thresholds empirically (we expose 1.0 as well —
    /// experiments pass their own λ).
    pub fn lambda(&self) -> f64 {
        1.0
    }

    /// Full wire size of a segment carrying `payload` bytes.
    pub fn wire_size(&self, payload: u32) -> u32 {
        payload + self.header
    }
}

/// What a sender wants done after an input: packets on the wire and the
/// retransmission deadline to arm (absolute; `None` when idle/done).
///
/// The host loop is expected to keep **one** `SenderOutput` as reusable
/// scratch, [`clear`](SenderOutput::clear) it, and pass it to the
/// `*_into` sender entry points: the packet `Vec` then retains its
/// capacity across events, so steady-state emission performs no
/// allocator round-trips.
#[derive(Debug, Default)]
pub struct SenderOutput {
    /// Packets to transmit, in order.
    pub packets: Vec<Packet>,
    /// Absolute RTO deadline currently armed.
    pub timer: Option<Time>,
}

impl SenderOutput {
    /// Empty the output for reuse, keeping the packet buffer's capacity.
    pub fn clear(&mut self) {
        self.packets.clear();
        self.timer = None;
    }
}

/// A TCP sender for one flow of `size` bytes.
#[derive(Debug, Clone)]
pub struct TcpSender {
    cfg: TcpConfig,
    flow: FlowId,
    src: u32,
    dst: u32,
    size: u64,

    /// First unacknowledged byte.
    snd_una: u64,
    /// Next new byte to send.
    snd_nxt: u64,
    /// The window/rate policy.
    cc: CcAlgo,
    /// ECN path validation (inert unless `cfg.ecn_validation`).
    validator: EcnValidator,

    dupacks: u32,
    /// Sequence of the segment used for RTT sampling and its send time
    /// (Karn: invalidated on retransmission).
    timed_seg: Option<(u64, Time)>,
    rtt: RttEstimator,
    /// Absolute RTO deadline (None when no data in flight).
    rto_deadline: Option<Time>,

    /// Diagnostics.
    timeouts: u64,
    fast_retransmits: u64,
    ecn_reductions: u64,
    /// High-water mark of bytes handed to the wire; segments emitted
    /// below it are retransmissions.
    max_seq_sent: u64,
    rtx_packets: u64,
    rtx_bytes: u64,
    started: bool,
    probe: tcn_telemetry::Probe,
}

impl TcpSender {
    /// A sender for `size` bytes from `src` to `dst`.
    ///
    /// # Panics
    /// Panics on a zero-size flow or zero MSS.
    pub fn new(cfg: TcpConfig, flow: FlowId, src: u32, dst: u32, size: u64) -> Self {
        assert!(size > 0, "zero-size flow");
        assert!(cfg.mss > 0, "zero MSS");
        TcpSender {
            cfg,
            flow,
            src,
            dst,
            size,
            snd_una: 0,
            snd_nxt: 0,
            cc: CcAlgo::from_config(&cfg),
            validator: EcnValidator::new(cfg.ecn_validation, cfg.mss),
            dupacks: 0,
            timed_seg: None,
            rtt: RttEstimator::new(cfg.rto_min, cfg.rto_init, cfg.rto_max),
            rto_deadline: None,
            timeouts: 0,
            fast_retransmits: 0,
            ecn_reductions: 0,
            max_seq_sent: 0,
            rtx_packets: 0,
            rtx_bytes: 0,
            started: false,
            probe: tcn_telemetry::Probe::off(),
        }
    }

    /// Install a telemetry probe: the sender reports ECN window
    /// reductions, RTO expiries, fast-retransmit entries and
    /// congestion-control state transitions as congestion-episode
    /// events.
    pub fn set_probe(&mut self, probe: tcn_telemetry::Probe) {
        self.probe = probe;
    }

    /// Begin transmitting (emits the initial window).
    pub fn start(&mut self, now: Time) -> SenderOutput {
        let mut out = SenderOutput::default();
        self.start_into(now, &mut out);
        out
    }

    /// [`start`](Self::start), appending into caller-owned scratch
    /// (the zero-allocation entry point; see [`SenderOutput::clear`]).
    pub fn start_into(&mut self, now: Time, out: &mut SenderOutput) {
        assert!(!self.started, "start called twice");
        self.started = true;
        self.pump_into(now, out);
    }

    /// Handle a cumulative ACK (`cum_ack` = next byte the receiver
    /// expects) with its ECN echo flag.
    pub fn on_ack(&mut self, cum_ack: u64, ece: bool, now: Time) -> SenderOutput {
        let mut out = SenderOutput::default();
        self.on_ack_into(cum_ack, ece, now, &mut out);
        out
    }

    /// [`on_ack`](Self::on_ack), appending into caller-owned scratch.
    pub fn on_ack_into(&mut self, cum_ack: u64, ece: bool, now: Time, out: &mut SenderOutput) {
        if !self.started || self.is_done() {
            self.output_nothing_into(out);
            return;
        }
        let newly_acked = cum_ack.saturating_sub(self.snd_una);

        // Path validation observes the raw echo; a failed path then
        // filters it out of everything below.
        if let Some((from, to)) = self.validator.on_ack(cum_ack.max(self.snd_una), ece) {
            self.emit_validator_transition(from, to, now);
        }
        let ece = ece && self.validator.ecn_usable();

        let prev_state = self.cc.state();

        // Per-ACK policy bookkeeping counts every ACK, marked or not
        // (DCTCP's byte accounting, BBR's delivery samples).
        let ctx = self.ctx(now, None);
        self.cc.on_ack(newly_acked, ece, &ctx);

        if newly_acked == 0 {
            // Duplicate ACK.
            if cum_ack == self.snd_una && self.snd_nxt > self.snd_una {
                self.dupacks += 1;
                if self.cc.in_recovery() {
                    // Window inflation keeps the pipe full.
                    let ctx = self.ctx(now, None);
                    self.cc.on_dup_inflate(&ctx);
                } else if self.dupacks == self.cfg.dupack_thresh {
                    self.enter_fast_retransmit_into(now, out);
                    self.note_cc_state(prev_state, now);
                    return;
                }
            }
            // ECN echo on a dup ACK still counts for the reduction.
            if ece {
                self.ecn_echo(now);
            }
            self.note_cc_state(prev_state, now);
            self.pump_into(now, out);
            return;
        }

        // Fresh ACK.
        self.snd_una = cum_ack;
        // Defensive: an ACK beyond snd_nxt (impossible from our receiver,
        // but cheap to be robust against) acknowledges everything sent.
        if self.snd_nxt < self.snd_una {
            self.snd_nxt = self.snd_una;
        }
        self.dupacks = 0;

        // RTT sample (Karn-safe: timed segment invalidated on rtx).
        let mut latest_rtt = None;
        if let Some((seq, sent)) = self.timed_seg {
            if cum_ack > seq {
                let sample = now.saturating_sub(sent);
                self.rtt.sample(sample);
                latest_rtt = Some(sample);
                self.timed_seg = None;
            }
        }

        // Recovery exit or window growth, plus per-window rollovers.
        let ctx = self.ctx(now, latest_rtt);
        self.cc.on_fresh_ack(newly_acked, &ctx);

        if ece {
            self.ecn_echo(now);
        }

        // Re-arm or clear the RTO.
        if self.snd_una >= self.snd_nxt {
            self.rto_deadline = None;
        } else {
            self.rto_deadline = Some(now.saturating_add(self.rtt.rto()));
        }

        self.note_cc_state(prev_state, now);
        self.pump_into(now, out);
    }

    /// Handle an armed timer firing at `now`. Stale timers (deadline
    /// moved or cleared) are ignored; the host may therefore arm a timer
    /// event for every `SenderOutput::timer` it sees without cancelling
    /// old ones.
    pub fn on_timer(&mut self, now: Time) -> SenderOutput {
        let mut out = SenderOutput::default();
        self.on_timer_into(now, &mut out);
        out
    }

    /// [`on_timer`](Self::on_timer), appending into caller-owned scratch.
    pub fn on_timer_into(&mut self, now: Time, out: &mut SenderOutput) {
        match self.rto_deadline {
            Some(deadline) if now >= deadline && !self.is_done() => {}
            _ => {
                self.output_nothing_into(out);
                return;
            }
        }
        // RTO: the policy collapses; we back off and go-back-N.
        self.timeouts += 1;
        let prev_state = self.cc.state();
        // ctx.snd_nxt is still the pre-rewind high-water mark — the
        // policy's reduction gate must cover everything sent so far.
        let ctx = self.ctx(now, None);
        self.cc.on_rto(&ctx);
        self.probe.emit(|| tcn_telemetry::Event::RtoFired {
            at_ps: now.as_ps(),
            flow: self.flow.0,
            cwnd_bytes: self.cc.cwnd() as u64,
            timeouts: self.timeouts,
        });
        if let Some((from, to)) = self.validator.on_rto(self.snd_una) {
            self.emit_validator_transition(from, to, now);
        }
        self.dupacks = 0;
        self.rtt.back_off();
        self.timed_seg = None; // Karn

        // Go-back-N: resend from snd_una.
        self.snd_nxt = self.snd_una;
        self.rto_deadline = None; // pump re-arms with the backed-off RTO
        self.note_cc_state(prev_state, now);
        self.pump_into(now, out);
        // pump always arms from now + rto (already backed off).
        out.timer = self.rto_deadline;
    }

    /// Switch this flow's congestion controller mid-run (the scenario
    /// DSL's `cc-switch` mutation). The current window carries over so
    /// the flow keeps its sending rate; the new algorithm's state
    /// starts clean (in congestion avoidance for the window-based
    /// controllers — a mid-flow switch must not slow-start-blast).
    /// No-op if the flow already runs `cc`.
    pub fn switch_cc(&mut self, cc: Cc, now: Time) {
        if cc == self.cc.kind() {
            return;
        }
        let from = self.cc.name();
        let cwnd = self.cc.cwnd();
        self.cc = CcAlgo::carried(cc, &self.cfg, cwnd);
        let to = self.cc.name();
        self.probe.emit(|| tcn_telemetry::Event::CcState {
            at_ps: now.as_ps(),
            flow: self.flow.0,
            cc: "switch",
            from,
            to,
        });
    }

    /// True once every byte has been cumulatively acknowledged.
    pub fn is_done(&self) -> bool {
        self.snd_una >= self.size
    }

    /// Current congestion window in bytes (diagnostics).
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// DCTCP α estimate (0 for other controllers).
    pub fn alpha(&self) -> f64 {
        self.cc.alpha()
    }

    /// The running congestion-control algorithm.
    pub fn cc_kind(&self) -> Cc {
        self.cc.kind()
    }

    /// The controller's current state-machine phase ("slow-start",
    /// "probe-bw", …) for diagnostics.
    pub fn cc_state(&self) -> &'static str {
        self.cc.state()
    }

    /// The ECN path-validation verdict for this flow.
    pub fn ecn_path_state(&self) -> EcnPathState {
        self.validator.state()
    }

    /// Number of RTO expiries so far (the paper counts these to explain
    /// tail FCTs, §6.2.1).
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Number of fast retransmits so far.
    pub fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    /// Number of ECN-induced window reductions.
    pub fn ecn_reductions(&self) -> u64 {
        self.ecn_reductions
    }

    /// Data segments retransmitted so far (go-back-N resends and fast
    /// retransmits alike).
    pub fn rtx_packets(&self) -> u64 {
        self.rtx_packets
    }

    /// Payload bytes retransmitted so far.
    pub fn rtx_bytes(&self) -> u64 {
        self.rtx_bytes
    }

    /// Flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Total flow size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Snapshot for the controller hooks.
    fn ctx(&self, now: Time, latest_rtt: Option<Time>) -> CcCtx {
        CcCtx {
            now,
            snd_una: self.snd_una,
            snd_nxt: self.snd_nxt,
            mss: self.cfg.mss,
            dupack_thresh: self.cfg.dupack_thresh,
            srtt: self.rtt.srtt(),
            latest_rtt,
        }
    }

    fn output_nothing_into(&self, out: &mut SenderOutput) {
        out.timer = self.rto_deadline;
    }

    /// Hand an ECN echo to the policy; on an applied reduction, count
    /// and report it.
    fn ecn_echo(&mut self, now: Time) {
        let ctx = self.ctx(now, None);
        if self.cc.on_ecn_echo(&ctx) {
            self.ecn_reductions += 1;
            self.probe.emit(|| tcn_telemetry::Event::EcnReduce {
                at_ps: now.as_ps(),
                flow: self.flow.0,
                cwnd_bytes: self.cc.cwnd() as u64,
                alpha_ppm: (self.cc.alpha() * 1e6) as u32,
            });
        }
    }

    /// Report a controller phase transition observed across a hook.
    fn note_cc_state(&mut self, prev: &'static str, now: Time) {
        let cur = self.cc.state();
        if prev != cur {
            self.probe.emit(|| tcn_telemetry::Event::CcState {
                at_ps: now.as_ps(),
                flow: self.flow.0,
                cc: self.cc.name(),
                from: prev,
                to: cur,
            });
        }
    }

    /// Report an ECN path-validation transition.
    fn emit_validator_transition(&mut self, from: &'static str, to: &'static str, now: Time) {
        self.probe.emit(|| tcn_telemetry::Event::CcState {
            at_ps: now.as_ps(),
            flow: self.flow.0,
            cc: "ecn-validation",
            from,
            to,
        });
    }

    fn enter_fast_retransmit_into(&mut self, now: Time, out: &mut SenderOutput) {
        self.fast_retransmits += 1;
        let ctx = self.ctx(now, None);
        self.cc.on_loss(&ctx);
        self.probe.emit(|| tcn_telemetry::Event::FastRtx {
            at_ps: now.as_ps(),
            flow: self.flow.0,
            cwnd_bytes: self.cc.cwnd() as u64,
        });
        self.timed_seg = None; // Karn

        let seg = self.make_segment(self.snd_una, now);
        let ctx = self.ctx(now, None);
        self.cc.on_sent(self.snd_una, seg.payload_len(), true, &ctx);
        out.packets.push(seg);
        self.rto_deadline = Some(now.saturating_add(self.rtt.rto()));
        // Recovery may also allow new data.
        self.pump_into(now, out);
        out.timer = self.rto_deadline;
    }

    /// Emit as much new data as the window allows, appending to `out`.
    fn pump_into(&mut self, now: Time, out: &mut SenderOutput) {
        let before = out.packets.len();
        let mss = u64::from(self.cfg.mss);
        loop {
            if self.snd_nxt >= self.size {
                break;
            }
            let inflight = self.snd_nxt - self.snd_una;
            // Always allow one segment when nothing is in flight so a
            // collapsed window cannot deadlock.
            let budget = self.cc.cwnd().max(f64::from(self.cfg.mss)) as u64;
            if inflight >= budget {
                break;
            }
            let payload = mss.min(self.size - self.snd_nxt) as u32;
            let seq = self.snd_nxt;
            let is_rtx = seq < self.max_seq_sent;
            let seg = self.make_segment(seq, now);
            let ctx = self.ctx(now, None);
            self.cc.on_sent(seq, payload, is_rtx, &ctx);
            out.packets.push(seg);
            self.snd_nxt += u64::from(payload);
            if self.timed_seg.is_none() {
                self.timed_seg = Some((seq, now));
            }
        }
        if out.packets.len() > before && self.rto_deadline.is_none() {
            self.rto_deadline = Some(now.saturating_add(self.rtt.rto()));
        }
        out.timer = self.rto_deadline;
    }

    fn make_segment(&mut self, seq: u64, now: Time) -> Packet {
        let payload = u64::from(self.cfg.mss).min(self.size - seq) as u32;
        if seq < self.max_seq_sent {
            self.rtx_packets += 1;
            self.rtx_bytes += u64::from(payload);
        }
        self.max_seq_sent = self.max_seq_sent.max(seq + u64::from(payload));
        let mut p = Packet::data(self.flow, self.src, self.dst, seq, payload, self.cfg.header);
        p.birth_ts = now;
        // Loss-based tenants and failed-validation paths send Not-ECT:
        // sojourn markers cannot mark them and RED-family AQMs drop
        // instead (the coexistence the mixed-tenant figures study).
        if !(self.cc.ecn_capable() && self.validator.ecn_usable()) {
            p.ecn = EcnCodepoint::NotEct;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcn_core::PacketKind;

    fn seqs(out: &SenderOutput) -> Vec<u64> {
        out.packets
            .iter()
            .map(|p| match p.kind {
                PacketKind::Data { seq, .. } => seq,
                _ => panic!("sender emitted non-data"),
            })
            .collect()
    }

    fn sender(size: u64) -> TcpSender {
        TcpSender::new(TcpConfig::preset(Cc::Dctcp).sim(), FlowId(1), 0, 1, size)
    }

    #[test]
    fn start_emits_initial_window() {
        let mut s = sender(1_000_000);
        let out = s.start(Time::ZERO);
        // 16 segments of 1460 B.
        assert_eq!(out.packets.len(), 16);
        assert_eq!(seqs(&out)[0], 0);
        assert_eq!(seqs(&out)[15], 15 * 1460);
        assert!(out.timer.is_some(), "RTO armed with data in flight");
    }

    #[test]
    fn small_flow_sends_exact_bytes() {
        let mut s = sender(3000);
        let out = s.start(Time::ZERO);
        assert_eq!(out.packets.len(), 3);
        let total: u32 = out.packets.iter().map(|p| p.payload_len()).sum();
        assert_eq!(u64::from(total), 3000);
        assert_eq!(out.packets[2].payload_len(), 80); // 3000 - 2*1460
    }

    #[test]
    fn deprecated_presets_still_build() {
        #[allow(deprecated)]
        let cfg = TcpConfig::sim_dctcp();
        assert_eq!(cfg.cc, Cc::Dctcp);
        assert_eq!(cfg.init_cwnd, 16);
        #[allow(deprecated)]
        let cfg = TcpConfig::testbed_dctcp();
        assert_eq!(cfg.init_cwnd, 10);
        assert_eq!(cfg.rto_min, Time::from_ms(10));
    }

    #[test]
    fn fluent_preset_matches_paper_setups() {
        let sim = TcpConfig::preset(Cc::EcnStar).sim();
        assert_eq!(sim.cc, Cc::EcnStar);
        assert_eq!((sim.mss, sim.header, sim.init_cwnd), (1460, 40, 16));
        assert_eq!(sim.rto_min, Time::from_ms(5));
        let tb = TcpConfig::preset(Cc::Cubic).testbed();
        assert_eq!(tb.cc, Cc::Cubic);
        assert_eq!(tb.init_cwnd, 10);
        assert!(!tb.ecn_validation);
        assert!(tb.with_ecn_validation(true).ecn_validation);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender(100_000_000);
        let t0 = Time::ZERO;
        s.start(t0);
        let cwnd0 = s.cwnd();
        // ACK the whole initial window.
        let t1 = Time::from_us(100);
        let out = s.on_ack(16 * 1460, false, t1);
        assert!((s.cwnd() - cwnd0 * 2.0).abs() < 1.0, "cwnd {}", s.cwnd());
        // And the freed window emits ~2× the packets.
        assert!(out.packets.len() >= 30, "sent {}", out.packets.len());
    }

    #[test]
    fn congestion_avoidance_linear_growth() {
        let mut s = sender(100_000_000);
        s.start(Time::ZERO);
        // Force CA with a mark.
        s.on_ack(1460, true, Time::from_us(100));
        let cwnd = s.cwnd();
        // One full window of ACKs grows ≈ 1 MSS.
        let mut acked = 1460;
        let per_ack = 1460u64;
        let win_packets = (cwnd / 1460.0).ceil() as u64;
        for _ in 0..win_packets {
            acked += per_ack;
            s.on_ack(acked, false, Time::from_us(200));
        }
        let growth = s.cwnd() - cwnd;
        assert!(
            (growth - 1460.0).abs() < 150.0,
            "CA growth per RTT should be ~1 MSS, got {growth}"
        );
    }

    #[test]
    fn ecn_star_halves_once_per_window() {
        let mut s = TcpSender::new(
            TcpConfig::preset(Cc::EcnStar).sim(),
            FlowId(1),
            0,
            1,
            10_000_000,
        );
        s.start(Time::ZERO);
        let cwnd0 = s.cwnd();
        s.on_ack(1460, true, Time::from_us(100));
        // Slow-start growth for the acked MSS applies before the halving,
        // so the result is (cwnd0 + mss) / 2.
        assert!((s.cwnd() - (cwnd0 + 1460.0) / 2.0).abs() < 1.0);
        // Second ECE in the same window: no further cut.
        let c = s.cwnd();
        s.on_ack(2920, true, Time::from_us(110));
        assert!((s.cwnd() - c).abs() < f64::from(1460) + 1.0, "only growth allowed");
        assert_eq!(s.ecn_reductions(), 1);
    }

    #[test]
    fn dctcp_cut_proportional_to_alpha() {
        let g = 1.0 / 16.0;
        let mut s = TcpSender::new(
            TcpConfig::preset(Cc::Dctcp).sim().with_dctcp_gain(g),
            FlowId(1),
            0,
            1,
            100_000_000,
        );
        s.start(Time::ZERO);
        // First window fully marked: F = 1 → α = g after rollover.
        let w = 16 * 1460;
        s.on_ack(w, true, Time::from_us(100));
        assert!((s.alpha() - g).abs() < 1e-9, "alpha {}", s.alpha());
        // The cut used α at echo time.
        // With small α the cut is gentle — this is DCTCP's whole point.
        let cwnd_after = s.cwnd();
        assert!(cwnd_after > 0.9 * (w as f64), "gentle cut, got {cwnd_after}");
    }

    #[test]
    fn dctcp_alpha_converges_under_persistent_marking() {
        let mut s = sender(1_000_000_000);
        s.start(Time::ZERO);
        let mut acked = 0u64;
        let mut now = Time::ZERO;
        for _ in 0..200 {
            now += Time::from_us(100);
            acked += 14_600;
            s.on_ack(acked, true, now);
        }
        assert!(s.alpha() > 0.9, "alpha should approach 1, got {}", s.alpha());
    }

    #[test]
    fn dctcp_alpha_decays_without_marks() {
        let mut s = sender(1_000_000_000);
        s.start(Time::ZERO);
        let mut acked = 0u64;
        let mut now = Time::ZERO;
        for _ in 0..50 {
            now += Time::from_us(100);
            acked += 14_600;
            s.on_ack(acked, true, now);
        }
        let high = s.alpha();
        for _ in 0..200 {
            now += Time::from_us(100);
            acked += 14_600;
            s.on_ack(acked, false, now);
        }
        assert!(s.alpha() < high / 10.0, "alpha must decay, got {}", s.alpha());
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut s = sender(1_000_000);
        s.start(Time::ZERO);
        // Segment 0 lost: ACKs for later segments repeat cum_ack = 0…
        // (receiver acks next_expected=0 on every OOO arrival… our
        // receiver acks 0; model dup acks directly here).
        let mut out = SenderOutput::default();
        for _ in 0..3 {
            out = s.on_ack(0, false, Time::from_us(50));
        }
        assert_eq!(s.fast_retransmits(), 1);
        assert_eq!(seqs(&out)[0], 0, "must retransmit the hole");
    }

    #[test]
    fn recovery_exits_on_new_ack() {
        let mut s = sender(1_000_000);
        s.start(Time::ZERO);
        let cwnd0 = s.cwnd();
        for _ in 0..3 {
            s.on_ack(0, false, Time::from_us(50));
        }
        assert_eq!(s.cc_state(), "recovery");
        s.on_ack(16 * 1460, false, Time::from_us(100));
        // Deflated to ssthresh = cwnd0/2.
        assert!((s.cwnd() - cwnd0 / 2.0).abs() < 1.0, "cwnd {}", s.cwnd());
        assert_eq!(s.timeouts(), 0);
        assert_eq!(s.cc_state(), "congestion-avoidance");
    }

    #[test]
    fn rto_collapses_window_and_retransmits() {
        let mut s = sender(1_000_000);
        let out = s.start(Time::ZERO);
        let deadline = out.timer.unwrap();
        // 5 ms RTO_min in sim config.
        assert_eq!(deadline, Time::from_ms(5));
        let out = s.on_timer(deadline);
        assert_eq!(s.timeouts(), 1);
        assert_eq!(seqs(&out)[0], 0, "go-back-N from snd_una");
        assert!((s.cwnd() - 1460.0).abs() < 1.0);
        // Backed-off deadline re-armed.
        assert!(out.timer.unwrap() > deadline);
    }

    #[test]
    fn stale_timer_ignored() {
        let mut s = sender(1_000_000);
        let out = s.start(Time::ZERO);
        let d0 = out.timer.unwrap();
        // ACK everything before the timer fires.
        let n = (1_000_000u64).div_ceil(1460);
        let mut acked = 0;
        let mut now = Time::from_us(100);
        while !s.is_done() {
            acked = (acked + 16 * 1460).min(1_000_000);
            s.on_ack(acked, false, now);
            now += Time::from_us(100);
        }
        let _ = n;
        let out = s.on_timer(d0);
        assert!(out.packets.is_empty(), "done flow must ignore timers");
        assert_eq!(s.timeouts(), 0);
    }

    #[test]
    fn completion() {
        let mut s = sender(5000);
        s.start(Time::ZERO);
        assert!(!s.is_done());
        s.on_ack(5000, false, Time::from_us(100));
        assert!(s.is_done());
    }

    #[test]
    fn no_send_beyond_flow_size() {
        let mut s = sender(2920);
        let out = s.start(Time::ZERO);
        assert_eq!(out.packets.len(), 2);
        // Fresh ACK with a huge window: still nothing more to send.
        let out = s.on_ack(1460, false, Time::from_us(100));
        assert!(out.packets.is_empty());
    }

    #[test]
    fn zero_inflight_can_always_send() {
        // Even if cwnd collapses below MSS, one segment may fly.
        let mut s = sender(1_000_000);
        s.start(Time::ZERO);
        let d = s.rto_deadline.unwrap();
        let out = s.on_timer(d);
        assert!(!out.packets.is_empty());
    }

    #[test]
    fn rtt_sampling_feeds_rto() {
        let mut s = sender(10_000_000);
        s.start(Time::ZERO);
        s.on_ack(1460, false, Time::from_us(300));
        assert_eq!(s.rtt.srtt(), Some(Time::from_us(300)));
    }

    #[test]
    fn ecn_capable_transports_send_ect() {
        let mut s = sender(10_000);
        let out = s.start(Time::ZERO);
        assert!(out.packets.iter().all(|p| p.ecn == EcnCodepoint::Ect0));
    }

    #[test]
    fn loss_based_transports_send_not_ect() {
        for cc in [Cc::Cubic, Cc::Bbr] {
            let mut s =
                TcpSender::new(TcpConfig::preset(cc).sim(), FlowId(1), 0, 1, 10_000);
            let out = s.start(Time::ZERO);
            assert!(
                out.packets.iter().all(|p| p.ecn == EcnCodepoint::NotEct),
                "{} must be Not-ECT",
                cc.name()
            );
        }
    }

    #[test]
    fn failed_validation_falls_back_to_not_ect() {
        let cfg = TcpConfig::preset(Cc::Dctcp).sim().with_ecn_validation(true);
        let mut s = TcpSender::new(cfg, FlowId(1), 0, 1, 10_000_000);
        s.start(Time::ZERO);
        assert_eq!(s.ecn_path_state(), EcnPathState::Testing);
        // Every ACK of the testing window carries CE: mangled path.
        let mut acked = 0u64;
        let mut now = Time::ZERO;
        while s.ecn_path_state() == EcnPathState::Testing {
            now += Time::from_us(100);
            acked += 1460;
            s.on_ack(acked, true, now);
        }
        assert_eq!(s.ecn_path_state(), EcnPathState::Failed);
        // Subsequent segments are Not-ECT and echoes are ignored.
        let reductions = s.ecn_reductions();
        now += Time::from_us(100);
        acked += 1460;
        let out = s.on_ack(acked, true, now);
        assert!(out.packets.iter().all(|p| p.ecn == EcnCodepoint::NotEct));
        assert_eq!(s.ecn_reductions(), reductions, "echo ignored after failure");
    }

    #[test]
    fn clean_path_validates_and_keeps_ecn() {
        let cfg = TcpConfig::preset(Cc::Dctcp).sim().with_ecn_validation(true);
        let mut s = TcpSender::new(cfg, FlowId(1), 0, 1, 10_000_000);
        s.start(Time::ZERO);
        let mut acked = 0u64;
        let mut now = Time::ZERO;
        while s.ecn_path_state() == EcnPathState::Testing {
            now += Time::from_us(100);
            acked += 1460;
            s.on_ack(acked, false, now);
        }
        assert_eq!(s.ecn_path_state(), EcnPathState::Capable);
        let out = s.on_ack(acked + 1460, false, now + Time::from_us(100));
        assert!(out.packets.iter().all(|p| p.ecn == EcnCodepoint::Ect0));
    }

    #[test]
    fn cubic_sender_completes_flow() {
        let mut s = TcpSender::new(TcpConfig::preset(Cc::Cubic).sim(), FlowId(1), 0, 1, 100_000);
        s.start(Time::ZERO);
        let mut acked = 0u64;
        let mut now = Time::ZERO;
        while !s.is_done() {
            now += Time::from_us(100);
            acked = (acked + 16 * 1460).min(100_000);
            s.on_ack(acked, false, now);
        }
        assert!(s.is_done());
    }

    #[test]
    fn bbr_sender_completes_flow() {
        let mut s = TcpSender::new(TcpConfig::preset(Cc::Bbr).sim(), FlowId(1), 0, 1, 100_000);
        s.start(Time::ZERO);
        assert_eq!(s.cc_state(), "startup");
        let mut acked = 0u64;
        let mut now = Time::ZERO;
        while !s.is_done() {
            now += Time::from_us(100);
            acked = (acked + 16 * 1460).min(100_000);
            s.on_ack(acked, false, now);
        }
        assert!(s.is_done());
    }

    #[test]
    fn switch_cc_carries_window() {
        let mut s = sender(100_000_000);
        s.start(Time::ZERO);
        s.on_ack(16 * 1460, false, Time::from_us(100));
        let w = s.cwnd();
        s.switch_cc(Cc::Cubic, Time::from_us(200));
        assert_eq!(s.cc_kind(), Cc::Cubic);
        assert!((s.cwnd() - w).abs() < 1e-9, "window carries over");
        assert_eq!(s.cc_state(), "congestion-avoidance");
        // Switching to the same algorithm is a no-op.
        s.switch_cc(Cc::Cubic, Time::from_us(300));
        assert_eq!(s.cc_kind(), Cc::Cubic);
    }

    #[test]
    #[should_panic(expected = "zero-size flow")]
    fn zero_size_rejected() {
        sender(0);
    }
}
