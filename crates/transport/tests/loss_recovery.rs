//! Loss-recovery tests for the sender/receiver pair, driven by an
//! in-memory lossy wire with scripted drops and reorders (no network
//! simulator — just the transport state machines and a clock):
//!
//! * an isolated **tail loss** has no duplicate ACKs to trigger fast
//!   retransmit, so only the RTO can recover it;
//! * a **mid-window loss** generates a burst of duplicate ACKs and must
//!   recover via fast retransmit with zero timeouts;
//! * **mild reordering** (below the dup-ACK threshold) must cause zero
//!   retransmissions of any kind.
//!
//! Each scenario sweeps a deterministic seed loop so the drop position
//! varies while the recovery-path claim stays invariant.

use std::collections::VecDeque;

use tcn_core::{FlowId, Packet, PacketKind};
use tcn_sim::{Rng, Time};
use tcn_transport::{Cc, TcpConfig, TcpReceiver, TcpSender};

const CASES: u64 = 32;

/// What the wire does to the `i`-th *data transmission* (0-based count
/// of packets handed to the wire, retransmissions included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireAction {
    Deliver,
    Drop,
    /// Hold this packet back and deliver it right after the next one
    /// (a one-packet reorder).
    SwapWithNext,
}

struct RunResult {
    sender: TcpSender,
    receiver: TcpReceiver,
    delivered: u64,
}

/// Drive one flow to completion over the scripted wire. One-way delay
/// is 50 µs; the clock jumps to the RTO deadline whenever the wire goes
/// idle with data still outstanding.
fn run_flow(size: u64, mut action: impl FnMut(u64) -> WireAction) -> RunResult {
    let one_way = Time::from_us(50);
    let cfg = TcpConfig::preset(Cc::Dctcp).sim();
    let mut sender = TcpSender::new(cfg, FlowId(1), 0, 1, size);
    let mut receiver = TcpReceiver::new(FlowId(1), 1, 0, size);
    let mut now = Time::from_us(1);

    let mut wire: VecDeque<Packet> = VecDeque::new();
    let mut sent = 0u64;
    let mut delivered = 0u64;
    let mut timer: Option<Time>;

    let out = sender.start(now);
    wire.extend(out.packets);
    timer = out.timer;

    // Generous step bound: a stuck state machine fails loudly instead
    // of spinning forever.
    for _ in 0..100_000 {
        if sender.is_done() {
            return RunResult {
                sender,
                receiver,
                delivered,
            };
        }
        let pkt = match wire.pop_front() {
            Some(p) => p,
            None => {
                // Wire idle with the flow unfinished: only the armed
                // RTO can make progress.
                let deadline = timer.expect("idle, not done, and no timer armed");
                now = now.max(deadline);
                let out = sender.on_timer(now);
                wire.extend(out.packets);
                timer = out.timer;
                continue;
            }
        };
        match action(sent) {
            WireAction::Drop => {
                sent += 1;
                continue;
            }
            WireAction::SwapWithNext => {
                sent += 1;
                if let Some(next) = wire.pop_front() {
                    wire.push_front(pkt);
                    wire.push_front(next);
                } else {
                    wire.push_front(pkt);
                }
                continue;
            }
            WireAction::Deliver => sent += 1,
        }
        delivered += 1;
        now += one_way;
        let ack = receiver.on_data(&pkt, now).unwrap();
        now += one_way;
        let (cum_ack, ece) = match ack.kind {
            PacketKind::Ack { cum_ack, ece } => (cum_ack, ece),
            _ => panic!("receiver produced non-ack"),
        };
        let out = sender.on_ack(cum_ack, ece, now);
        wire.extend(out.packets);
        timer = out.timer;
    }
    panic!("flow did not complete within the step bound");
}

#[test]
fn tail_loss_is_recovered_by_rto_only() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x7A11 + case);
        // 4..16 full segments; drop the very last first transmission.
        let nseg = 4 + rng.gen_range(13);
        let size = nseg * 1460;
        let last = nseg - 1;
        let r = run_flow(size, |i| {
            if i == last {
                WireAction::Drop
            } else {
                WireAction::Deliver
            }
        });
        assert!(r.receiver.is_complete(), "case {case}");
        assert_eq!(
            r.sender.timeouts(),
            1,
            "case {case}: tail loss must cost exactly one RTO"
        );
        assert_eq!(
            r.sender.fast_retransmits(),
            0,
            "case {case}: no dupacks exist after a tail loss"
        );
        assert!(r.sender.rtx_packets() >= 1, "case {case}");
    }
}

#[test]
fn mid_window_loss_is_recovered_by_fast_retransmit() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xFA57 + case);
        // Big enough that >= dupack_thresh segments follow the loss
        // inside the initial window (IW = 16 segments).
        let nseg = 20 + rng.gen_range(21);
        let size = nseg * 1460;
        // Drop one first-transmission in the first window, leaving at
        // least 3 later segments in flight to generate the dupacks.
        let victim = 2 + rng.gen_range(10);
        let r = run_flow(size, |i| {
            if i == victim {
                WireAction::Drop
            } else {
                WireAction::Deliver
            }
        });
        assert!(r.receiver.is_complete(), "case {case}");
        assert_eq!(
            r.sender.timeouts(),
            0,
            "case {case}: fast retransmit must beat the RTO"
        );
        assert_eq!(r.sender.fast_retransmits(), 1, "case {case}");
        assert!(r.sender.rtx_packets() >= 1, "case {case}");
    }
}

#[test]
fn mild_reordering_causes_zero_spurious_retransmits() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0EDE + case);
        let nseg = 8 + rng.gen_range(25);
        let size = nseg * 1460;
        // Swap one adjacent pair: the receiver sees exactly one
        // out-of-order segment -> at most one dupack, below the
        // threshold of 3.
        let victim = rng.gen_range(nseg - 1);
        let r = run_flow(size, |i| {
            if i == victim {
                WireAction::SwapWithNext
            } else {
                WireAction::Deliver
            }
        });
        assert!(r.receiver.is_complete(), "case {case}");
        assert_eq!(r.sender.timeouts(), 0, "case {case}");
        assert_eq!(r.sender.fast_retransmits(), 0, "case {case}");
        assert_eq!(
            r.sender.rtx_packets(),
            0,
            "case {case}: reordering below the dupack threshold must not retransmit"
        );
        assert_eq!(r.delivered, nseg, "every segment sent exactly once");
    }
}
