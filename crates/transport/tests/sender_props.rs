//! Property tests for the TCP sender state machine: no input sequence —
//! however adversarial — may violate the sequence-space invariants.

use proptest::prelude::*;
use tcn_core::PacketKind;
use tcn_sim::Time;
use tcn_transport::{CcVariant, TcpConfig, TcpSender};

#[derive(Debug, Clone)]
enum Input {
    /// Cumulative ACK at an arbitrary (possibly bogus) sequence.
    Ack { cum_ack: u64, ece: bool },
    /// Fire the armed timer (if any).
    Timer,
    /// Let time pass.
    Advance { us: u64 },
}

fn input_strategy(size: u64) -> impl Strategy<Value = Input> {
    prop_oneof![
        (0..=size + 5_000, any::<bool>())
            .prop_map(|(cum_ack, ece)| Input::Ack { cum_ack, ece }),
        Just(Input::Timer),
        (1u64..20_000).prop_map(|us| Input::Advance { us }),
    ]
}

fn check_outputs(
    sender: &TcpSender,
    packets: &[tcn_core::Packet],
    size: u64,
) -> Result<(), TestCaseError> {
    for p in packets {
        match p.kind {
            PacketKind::Data { seq, payload } => {
                prop_assert!(u64::from(payload) > 0, "empty segment");
                prop_assert!(
                    seq + u64::from(payload) <= size,
                    "segment beyond flow end: {seq}+{payload} > {size}"
                );
            }
            _ => prop_assert!(false, "sender emitted non-data"),
        }
    }
    prop_assert!(sender.cwnd() >= 1.0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary ACK/timer/time sequences the sender never emits
    /// bytes outside the flow, never panics, and reaches `is_done` only
    /// when the whole flow is acked.
    #[test]
    fn sender_sequence_space_safe(
        size in 1u64..2_000_000,
        dctcp in any::<bool>(),
        inputs in prop::collection::vec(input_strategy(2_000_000), 1..120),
    ) {
        let cfg = if dctcp {
            TcpConfig::sim_dctcp()
        } else {
            TcpConfig::sim_ecn_star()
        };
        let mut s = TcpSender::new(cfg, tcn_core::FlowId(1), 0, 1, size);
        let mut now = Time::from_us(1);
        let out = s.start(now);
        check_outputs(&s, &out.packets, size)?;
        let mut highest_ack = 0u64;
        for input in inputs {
            match input {
                Input::Ack { cum_ack, ece } => {
                    // Receivers only ack data they hold; clamp into the
                    // plausible range but allow duplicates/regressions.
                    let cum_ack = cum_ack.min(size);
                    highest_ack = highest_ack.max(cum_ack);
                    let out = s.on_ack(cum_ack, ece, now);
                    check_outputs(&s, &out.packets, size)?;
                }
                Input::Timer => {
                    let out = s.on_timer(now);
                    check_outputs(&s, &out.packets, size)?;
                }
                Input::Advance { us } => now += Time::from_us(us),
            }
            prop_assert!(
                !s.is_done() || highest_ack >= size,
                "done before all bytes acked (ack {highest_ack}, size {size})"
            );
        }
    }

    /// DCTCP's α always stays in [0, 1] no matter the echo pattern.
    #[test]
    fn dctcp_alpha_bounded(
        acks in prop::collection::vec((1u64..50_000, any::<bool>()), 1..200),
    ) {
        let mut s = TcpSender::new(
            TcpConfig {
                variant: CcVariant::Dctcp { g: 1.0 / 16.0 },
                ..TcpConfig::sim_dctcp()
            },
            tcn_core::FlowId(1),
            0,
            1,
            1 << 30,
        );
        let mut now = Time::from_us(1);
        s.start(now);
        let mut cum = 0u64;
        for (step, ece) in acks {
            cum += step;
            now += Time::from_us(50);
            s.on_ack(cum, ece, now);
            prop_assert!((0.0..=1.0).contains(&s.alpha()), "alpha {}", s.alpha());
        }
    }

    /// A lossless in-order delivery always completes the flow, for any
    /// flow size (pairing the sender with the real receiver).
    #[test]
    fn lossless_delivery_completes(size in 1u64..300_000) {
        use tcn_transport::TcpReceiver;
        let cfg = TcpConfig::sim_dctcp();
        let mut s = TcpSender::new(cfg, tcn_core::FlowId(1), 0, 1, size);
        let mut r = TcpReceiver::new(tcn_core::FlowId(1), 1, 0, size);
        let mut now = Time::from_us(1);
        let mut wire: std::collections::VecDeque<tcn_core::Packet> =
            s.start(now).packets.into();
        let mut steps = 0;
        while !r.is_complete() {
            steps += 1;
            prop_assert!(steps < 100_000, "no progress");
            let pkt = wire.pop_front().expect("stalled without loss");
            now += Time::from_us(10);
            let ack = r.on_data(&pkt, now);
            if let PacketKind::Ack { cum_ack, ece } = ack.kind {
                now += Time::from_us(10);
                let out = s.on_ack(cum_ack, ece, now);
                wire.extend(out.packets);
            }
        }
        prop_assert_eq!(r.bytes_received(), size);
        prop_assert!(s.is_done());
        prop_assert_eq!(s.timeouts(), 0);
    }
}
