//! Randomized tests for the TCP sender state machine: no input sequence
//! — however adversarial — may violate the sequence-space invariants.
//! Deterministic seed sweep via `tcn_sim::Rng` (formerly proptest).

use tcn_core::PacketKind;
use tcn_sim::{Rng, Time};
use tcn_transport::{Cc, TcpConfig, TcpSender};

const CASES: u64 = 64;

#[derive(Debug, Clone)]
enum Input {
    /// Cumulative ACK at an arbitrary (possibly bogus) sequence.
    Ack { cum_ack: u64, ece: bool },
    /// Fire the armed timer (if any).
    Timer,
    /// Let time pass.
    Advance { us: u64 },
}

fn random_input(rng: &mut Rng, size: u64) -> Input {
    match rng.gen_range(3) {
        0 => Input::Ack {
            cum_ack: rng.gen_range(size + 5_001),
            ece: rng.chance(0.5),
        },
        1 => Input::Timer,
        _ => Input::Advance {
            us: 1 + rng.gen_range(19_999),
        },
    }
}

fn check_outputs(sender: &TcpSender, packets: &[tcn_core::Packet], size: u64) {
    for p in packets {
        match p.kind {
            PacketKind::Data { seq, payload } => {
                assert!(u64::from(payload) > 0, "empty segment");
                assert!(
                    seq + u64::from(payload) <= size,
                    "segment beyond flow end: {seq}+{payload} > {size}"
                );
            }
            _ => panic!("sender emitted non-data"),
        }
    }
    assert!(sender.cwnd() >= 1.0);
}

/// Under arbitrary ACK/timer/time sequences the sender never emits
/// bytes outside the flow, never panics, and reaches `is_done` only
/// when the whole flow is acked.
#[test]
fn sender_sequence_space_safe() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EC5 + case);
        let size = 1 + rng.gen_range(1_999_999);
        let dctcp = rng.chance(0.5);
        let ninputs = (1 + rng.gen_range(119)) as usize;
        let cfg = if dctcp {
            TcpConfig::preset(Cc::Dctcp).sim()
        } else {
            TcpConfig::preset(Cc::EcnStar).sim()
        };
        let mut s = TcpSender::new(cfg, tcn_core::FlowId(1), 0, 1, size);
        let mut now = Time::from_us(1);
        let out = s.start(now);
        check_outputs(&s, &out.packets, size);
        let mut highest_ack = 0u64;
        for _ in 0..ninputs {
            match random_input(&mut rng, 2_000_000) {
                Input::Ack { cum_ack, ece } => {
                    // Receivers only ack data they hold; clamp into the
                    // plausible range but allow duplicates/regressions.
                    let cum_ack = cum_ack.min(size);
                    highest_ack = highest_ack.max(cum_ack);
                    let out = s.on_ack(cum_ack, ece, now);
                    check_outputs(&s, &out.packets, size);
                }
                Input::Timer => {
                    let out = s.on_timer(now);
                    check_outputs(&s, &out.packets, size);
                }
                Input::Advance { us } => now += Time::from_us(us),
            }
            assert!(
                !s.is_done() || highest_ack >= size,
                "case {case}: done before all bytes acked (ack {highest_ack}, size {size})"
            );
        }
    }
}

/// DCTCP's α always stays in [0, 1] no matter the echo pattern.
#[test]
fn dctcp_alpha_bounded() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xA1FA + case);
        let nacks = (1 + rng.gen_range(199)) as usize;
        let mut s = TcpSender::new(
            TcpConfig::preset(Cc::Dctcp).sim().with_dctcp_gain(1.0 / 16.0),
            tcn_core::FlowId(1),
            0,
            1,
            1 << 30,
        );
        let mut now = Time::from_us(1);
        s.start(now);
        let mut cum = 0u64;
        for _ in 0..nacks {
            cum += 1 + rng.gen_range(49_999);
            now += Time::from_us(50);
            s.on_ack(cum, rng.chance(0.5), now);
            assert!(
                (0.0..=1.0).contains(&s.alpha()),
                "case {case}: alpha {}",
                s.alpha()
            );
        }
    }
}

/// A lossless in-order delivery always completes the flow, for any
/// flow size (pairing the sender with the real receiver).
#[test]
fn lossless_delivery_completes() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x10C5 + case);
        let size = 1 + rng.gen_range(299_999);
        use tcn_transport::TcpReceiver;
        let cfg = TcpConfig::preset(Cc::Dctcp).sim();
        let mut s = TcpSender::new(cfg, tcn_core::FlowId(1), 0, 1, size);
        let mut r = TcpReceiver::new(tcn_core::FlowId(1), 1, 0, size);
        let mut now = Time::from_us(1);
        let mut wire: std::collections::VecDeque<tcn_core::Packet> =
            s.start(now).packets.into();
        let mut steps = 0;
        while !r.is_complete() {
            steps += 1;
            assert!(steps < 100_000, "case {case}: no progress");
            let pkt = wire.pop_front().expect("stalled without loss");
            now += Time::from_us(10);
            let ack = r.on_data(&pkt, now).unwrap();
            if let PacketKind::Ack { cum_ack, ece } = ack.kind {
                now += Time::from_us(10);
                let out = s.on_ack(cum_ack, ece, now);
                wire.extend(out.packets);
            }
        }
        assert_eq!(r.bytes_received(), size, "case {case}");
        assert!(s.is_done(), "case {case}");
        assert_eq!(s.timeouts(), 0, "case {case}");
    }
}
