//! Open-loop Poisson flow arrivals sized to a target load.
//!
//! Load is defined as in the paper's experiments: the fraction of a
//! reference link's capacity consumed by the *offered* traffic. For a
//! mean flow size `E[S]` bytes and link rate `C`, the Poisson arrival
//! rate is `λ = ρ·C / (8·E[S])` flows per second.

use tcn_net::FlowSpec;
use tcn_sim::{Rate, Rng, Time};

use crate::cdf::SizeCdf;

/// Poisson arrival rate (flows/s) for target load `rho` on a link of
/// rate `capacity` with mean flow size `mean_size` bytes.
///
/// # Panics
/// Panics unless `0 < rho` and `mean_size > 0`.
pub fn poisson_rate_for_load(rho: f64, capacity: Rate, mean_size: f64) -> f64 {
    assert!(rho > 0.0 && rho.is_finite(), "load must be positive");
    assert!(mean_size > 0.0, "mean size must be positive");
    rho * capacity.as_bps() as f64 / (8.0 * mean_size)
}

/// Generate `n_flows` many-to-one flows: random sender from `senders`,
/// fixed `receiver`, sizes from `cdf`, Poisson arrivals at load `rho` of
/// the receiver's link `capacity`, service classes drawn uniformly from
/// `services` (the paper's testbed maps each flow "randomly … to one of
/// the 4 service queues", §6.1.2).
#[allow(clippy::too_many_arguments)] // experiment knobs, one call site each
pub fn gen_many_to_one(
    rng: &mut Rng,
    n_flows: usize,
    senders: &[u32],
    receiver: u32,
    cdf: &SizeCdf,
    rho: f64,
    capacity: Rate,
    services: &[u8],
    start: Time,
) -> Vec<FlowSpec> {
    assert!(!senders.is_empty() && !services.is_empty());
    assert!(!senders.contains(&receiver), "receiver among senders");
    let rate = poisson_rate_for_load(rho, capacity, cdf.mean());
    let mean_gap = Time::from_secs_f64(1.0 / rate);
    let mut t = start;
    let mut flows = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        t = t.saturating_add(rng.exp_time(mean_gap));
        let src = senders[rng.gen_range(senders.len() as u64) as usize];
        let service = services[rng.gen_range(services.len() as u64) as usize];
        flows.push(FlowSpec {
            src,
            dst: receiver,
            size: cdf.sample(rng),
            start: t,
            service,
        });
    }
    flows
}

/// Generate `n_flows` all-to-all flows over `n_hosts` hosts, as in the
/// paper's leaf-spine simulations (§6.2): the communication pairs are
/// "evenly classified into `n_services` services"; service `s` draws its
/// sizes from `cdfs[s % cdfs.len()]`. Load `rho` is relative to one host
/// link of rate `capacity`, scaled by the number of (receiving) hosts.
///
/// Returned services are `1 + (pair index mod n_services)` so service
/// DSCPs stay clear of the PIAS high-priority queue 0.
#[allow(clippy::too_many_arguments)] // experiment knobs, one call site each
pub fn gen_all_to_all(
    rng: &mut Rng,
    n_flows: usize,
    n_hosts: u32,
    cdfs: &[SizeCdf],
    rho: f64,
    capacity: Rate,
    n_services: u8,
    start: Time,
) -> Vec<FlowSpec> {
    assert!(n_hosts >= 2);
    assert!(!cdfs.is_empty() && n_services >= 1);
    // Offered load must average rho per host link: aggregate arrival
    // rate = rho × C × n_hosts / (8 × E[S_mix]).
    let mean_mix: f64 = (0..n_services)
        .map(|s| cdfs[s as usize % cdfs.len()].mean())
        .sum::<f64>()
        / f64::from(n_services);
    let rate = poisson_rate_for_load(rho, capacity, mean_mix) * f64::from(n_hosts);
    let mean_gap = Time::from_secs_f64(1.0 / rate);
    let mut t = start;
    let mut flows = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        t = t.saturating_add(rng.exp_time(mean_gap));
        let src = rng.gen_range(u64::from(n_hosts)) as u32;
        let dst = rng.pick_other(u64::from(n_hosts), u64::from(src)) as u32;
        // Pair → service, evenly (paper: pairs evenly classified).
        let pair = u64::from(src) * u64::from(n_hosts) + u64::from(dst);
        let service = (pair % u64::from(n_services)) as u8;
        let cdf = &cdfs[service as usize % cdfs.len()];
        flows.push(FlowSpec {
            src,
            dst,
            size: cdf.sample(rng),
            start: t,
            service: 1 + service,
        });
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::Workload;

    #[test]
    fn rate_formula() {
        // 50% of 1 Gbps with 1 MB flows: 62.5 flows/s.
        let r = poisson_rate_for_load(0.5, Rate::from_gbps(1), 1_000_000.0);
        assert!((r - 62.5).abs() < 1e-9);
    }

    #[test]
    fn many_to_one_offered_load_matches() {
        let mut rng = Rng::new(3);
        let cdf = Workload::WebSearch.cdf();
        let flows = gen_many_to_one(
            &mut rng,
            20_000,
            &[0, 1, 2, 3, 4, 5, 6, 7],
            8,
            &cdf,
            0.6,
            Rate::from_gbps(1),
            &[0, 1, 2, 3],
            Time::ZERO,
        );
        let total_bytes: u64 = flows.iter().map(|f| f.size).sum();
        let span = flows.last().unwrap().start.as_secs_f64();
        let load = total_bytes as f64 * 8.0 / span / 1e9;
        assert!(
            (load - 0.6).abs() < 0.05,
            "offered load {load} should be ≈ 0.6"
        );
    }

    #[test]
    fn many_to_one_uses_all_senders_and_services() {
        let mut rng = Rng::new(5);
        let cdf = Workload::Cache.cdf();
        let senders = [0u32, 1, 2, 3];
        let services = [0u8, 1, 2, 3];
        let flows = gen_many_to_one(
            &mut rng,
            2000,
            &senders,
            9,
            &cdf,
            0.5,
            Rate::from_gbps(1),
            &services,
            Time::ZERO,
        );
        for s in senders {
            assert!(flows.iter().any(|f| f.src == s));
        }
        for sv in services {
            assert!(flows.iter().any(|f| f.service == sv));
        }
        assert!(flows.iter().all(|f| f.dst == 9));
        // Arrivals are sorted by construction.
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn all_to_all_valid_pairs_and_services() {
        let mut rng = Rng::new(7);
        let cdfs: Vec<_> = Workload::ALL.iter().map(|w| w.cdf()).collect();
        let flows = gen_all_to_all(
            &mut rng,
            5000,
            16,
            &cdfs,
            0.5,
            Rate::from_gbps(10),
            7,
            Time::ZERO,
        );
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(f.src < 16 && f.dst < 16);
            assert!((1..=7).contains(&f.service), "service {}", f.service);
        }
        // All 7 services appear.
        for s in 1..=7u8 {
            assert!(flows.iter().any(|f| f.service == s), "service {s} unused");
        }
    }

    #[test]
    fn service_is_pair_deterministic() {
        // The same (src,dst) pair always maps to the same service — the
        // paper's "evenly classify these pairs into 7 services".
        let mut rng = Rng::new(11);
        let cdfs = vec![Workload::WebSearch.cdf()];
        let flows = gen_all_to_all(
            &mut rng,
            5000,
            8,
            &cdfs,
            0.5,
            Rate::from_gbps(10),
            7,
            Time::ZERO,
        );
        use std::collections::BTreeMap;
        let mut seen: BTreeMap<(u32, u32), u8> = BTreeMap::new();
        for f in &flows {
            let prev = seen.insert((f.src, f.dst), f.service);
            if let Some(p) = prev {
                assert_eq!(p, f.service, "pair service must be stable");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut rng = Rng::new(seed);
            let cdf = Workload::WebSearch.cdf();
            gen_many_to_one(
                &mut rng,
                100,
                &[0, 1],
                2,
                &cdf,
                0.5,
                Rate::from_gbps(1),
                &[0],
                Time::ZERO,
            )
            .iter()
            .map(|f| (f.src, f.size, f.start.as_ps()))
            .collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    #[test]
    #[should_panic(expected = "receiver among senders")]
    fn receiver_cannot_send_to_itself() {
        let mut rng = Rng::new(1);
        let cdf = Workload::Cache.cdf();
        gen_many_to_one(
            &mut rng,
            10,
            &[0, 1],
            1,
            &cdf,
            0.5,
            Rate::from_gbps(1),
            &[0],
            Time::ZERO,
        );
    }
}
