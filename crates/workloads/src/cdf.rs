//! Empirical flow-size distributions (paper Fig. 4).
//!
//! Each workload is a piecewise-linear CDF over flow sizes, sampled by
//! inverse transform. The web search and data mining tables are the
//! standard ns-2 workload files circulated with DCTCP/PIAS/MQ-ECN
//! research (the same lineage this paper used); the Hadoop and cache
//! tables are digitized approximations of Roy et al.'s published curves
//! — Fig. 4 itself is the paper's only specification, and the
//! experiments' shape conclusions depend only on heavy-tailedness, which
//! all four preserve.

use tcn_sim::Rng;

/// A piecewise-linear flow-size CDF.
#[derive(Debug, Clone)]
pub struct SizeCdf {
    /// `(size_bytes, cumulative_probability)`, strictly increasing in
    /// both coordinates, ending at probability 1.
    points: Vec<(f64, f64)>,
}

/// The four benchmark workloads of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Web search (DCTCP \[6\]) — the least skewed: ~60 % of bytes from
    /// flows < 10 MB, hence the hardest case and the testbed default.
    WebSearch,
    /// Data mining (VL2 \[17\]) — extremely skewed: most flows tiny, most
    /// bytes in rare ≥ 100 MB elephants.
    DataMining,
    /// Facebook Hadoop (Roy et al. \[27\]).
    Hadoop,
    /// Facebook cache follower (Roy et al. \[27\]).
    Cache,
}

impl Workload {
    /// All four, in Fig. 4 order.
    pub const ALL: [Workload; 4] = [
        Workload::WebSearch,
        Workload::DataMining,
        Workload::Hadoop,
        Workload::Cache,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::WebSearch => "web-search",
            Workload::DataMining => "data-mining",
            Workload::Hadoop => "hadoop",
            Workload::Cache => "cache",
        }
    }

    /// The workload's size CDF.
    pub fn cdf(self) -> SizeCdf {
        match self {
            Workload::WebSearch => SizeCdf::new(vec![
                (1.0, 0.0),
                (10_000.0, 0.15),
                (20_000.0, 0.20),
                (30_000.0, 0.30),
                (50_000.0, 0.40),
                (80_000.0, 0.53),
                (200_000.0, 0.60),
                (1_000_000.0, 0.70),
                (2_000_000.0, 0.80),
                (5_000_000.0, 0.90),
                (10_000_000.0, 0.97),
                (30_000_000.0, 1.00),
            ]),
            Workload::DataMining => SizeCdf::new(vec![
                (1.0, 0.0),
                (180.0, 0.10),
                (216.0, 0.20),
                (560.0, 0.30),
                (900.0, 0.40),
                (1_100.0, 0.50),
                (60_000.0, 0.60),
                (90_000.0, 0.70),
                (350_000.0, 0.80),
                (1_000_000.0, 0.90),
                (10_000_000.0, 0.95),
                (100_000_000.0, 0.98),
                (1_000_000_000.0, 1.00),
            ]),
            Workload::Hadoop => SizeCdf::new(vec![
                (1.0, 0.0),
                (256.0, 0.20),
                (512.0, 0.40),
                (1_024.0, 0.52),
                (4_096.0, 0.63),
                (10_240.0, 0.70),
                (102_400.0, 0.80),
                (1_048_576.0, 0.90),
                (10_485_760.0, 0.97),
                (104_857_600.0, 1.00),
            ]),
            Workload::Cache => SizeCdf::new(vec![
                (1.0, 0.0),
                (512.0, 0.35),
                (1_024.0, 0.50),
                (2_048.0, 0.60),
                (4_096.0, 0.70),
                (10_240.0, 0.80),
                (51_200.0, 0.90),
                (102_400.0, 0.94),
                (1_048_576.0, 0.98),
                (10_485_760.0, 1.00),
            ]),
        }
    }
}

impl SizeCdf {
    /// Build from `(size, cumulative probability)` points.
    ///
    /// # Panics
    /// Panics unless sizes are strictly increasing, probabilities are
    /// non-decreasing from 0 to exactly 1, and there are ≥ 2 points.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        let (first, last) = (points[0], points[points.len() - 1]);
        assert_eq!(first.1, 0.0, "CDF must start at 0");
        assert_eq!(last.1, 1.0, "CDF must end at 1");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must strictly increase");
            assert!(w[0].1 <= w[1].1, "probabilities must not decrease");
        }
        SizeCdf { points }
    }

    /// Draw one flow size by inverse transform (≥ 1 byte).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        self.quantile(rng.next_f64())
    }

    /// The `p`-quantile flow size (`0 ≤ p ≤ 1`), linearly interpolated.
    pub fn quantile(&self, p: f64) -> u64 {
        let p = p.clamp(0.0, 1.0);
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if p <= p1 {
                let size = if p1 > p0 {
                    s0 + (s1 - s0) * (p - p0) / (p1 - p0)
                } else {
                    s1
                };
                return size.round().max(1.0) as u64;
            }
        }
        self.points[self.points.len() - 1].0 as u64
    }

    /// Mean flow size (exact, by integrating the piecewise-linear
    /// inverse: each segment contributes its probability mass times its
    /// average size).
    pub fn mean(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (s0, p0) = w[0];
                let (s1, p1) = w[1];
                (p1 - p0) * (s0 + s1) / 2.0
            })
            .sum()
    }

    /// Fraction of total *bytes* contributed by flows of size ≤ `cut` —
    /// the statistic behind the paper's "~60 % of all bytes are from
    /// flows smaller than 10 MB" characterization of web search.
    pub fn byte_fraction_below(&self, cut: f64) -> f64 {
        let total = self.mean();
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if s1 <= cut {
                acc += (p1 - p0) * (s0 + s1) / 2.0;
            } else if s0 < cut {
                // Partial segment: linear size within the segment.
                let frac = (cut - s0) / (s1 - s0);
                let p_cut = p0 + (p1 - p0) * frac;
                acc += (p_cut - p0) * (s0 + cut) / 2.0;
                break;
            } else {
                break;
            }
        }
        acc / total
    }

    /// The CDF points (for emitting Fig. 4 data).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let cdf = SizeCdf::new(vec![(0.0, 0.0), (100.0, 0.5), (1000.0, 1.0)]);
        assert_eq!(cdf.quantile(0.0), 1); // clamped to ≥ 1 byte
        assert_eq!(cdf.quantile(0.25), 50);
        assert_eq!(cdf.quantile(0.5), 100);
        assert_eq!(cdf.quantile(0.75), 550);
        assert_eq!(cdf.quantile(1.0), 1000);
    }

    #[test]
    fn mean_exact_for_simple_cdf() {
        let cdf = SizeCdf::new(vec![(0.0, 0.0), (100.0, 1.0)]);
        assert!((cdf.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_mean_matches_analytic() {
        let mut rng = Rng::new(7);
        for wl in Workload::ALL {
            let cdf = wl.cdf();
            let n = 200_000;
            let sum: f64 = (0..n).map(|_| cdf.sample(&mut rng) as f64).sum();
            let emp = sum / n as f64;
            let ana = cdf.mean();
            let err = (emp - ana).abs() / ana;
            assert!(
                err < 0.05,
                "{}: empirical {emp:.0} vs analytic {ana:.0}",
                wl.name()
            );
        }
    }

    #[test]
    fn web_search_byte_fraction_matches_paper() {
        // §6 "benchmark traffic": ~60 % of web-search bytes come from
        // flows smaller than 10 MB.
        let frac = Workload::WebSearch.cdf().byte_fraction_below(10_000_000.0);
        assert!(
            (0.5..0.75).contains(&frac),
            "web search bytes below 10 MB: {frac}"
        );
    }

    #[test]
    fn data_mining_is_most_skewed() {
        // VL2's data mining puts the majority of bytes in ≥ 100 MB
        // elephants — more skewed than web search.
        let dm = Workload::DataMining.cdf().byte_fraction_below(10_000_000.0);
        let ws = Workload::WebSearch.cdf().byte_fraction_below(10_000_000.0);
        assert!(dm < ws, "data mining ({dm}) must be more skewed ({ws})");
        assert!(dm < 0.25, "data mining bytes below 10 MB: {dm}");
    }

    #[test]
    fn all_workloads_heavy_tailed() {
        // Median far below mean for every workload.
        for wl in Workload::ALL {
            let cdf = wl.cdf();
            let median = cdf.quantile(0.5) as f64;
            assert!(
                cdf.mean() > 4.0 * median,
                "{} not heavy-tailed: mean {} median {}",
                wl.name(),
                cdf.mean(),
                median
            );
        }
    }

    #[test]
    fn samples_within_support() {
        let mut rng = Rng::new(11);
        let cdf = Workload::WebSearch.cdf();
        for _ in 0..10_000 {
            let s = cdf.sample(&mut rng);
            assert!((1..=30_000_000).contains(&s));
        }
    }

    #[test]
    fn paper_workload_means() {
        // Pin the analytic means so accidental table edits are loud.
        // Web search ≈ 1.6 MB, data mining ≈ 7.4 MB (literature values).
        let ws = Workload::WebSearch.cdf().mean();
        assert!((1.4e6..1.9e6).contains(&ws), "web search mean {ws}");
        // Data mining lands near 13 MB with this table (literature
        // variants range ~7–15 MB depending on how the ≥ 100 MB tail is
        // truncated; the skew, not the absolute mean, carries the
        // experiments).
        let dm = Workload::DataMining.cdf().mean();
        assert!((5e6..16e6).contains(&dm), "data mining mean {dm}");
    }

    #[test]
    #[should_panic(expected = "CDF must end at 1")]
    fn incomplete_cdf_rejected() {
        SizeCdf::new(vec![(0.0, 0.0), (10.0, 0.9)]);
    }

    #[test]
    #[should_panic(expected = "sizes must strictly increase")]
    fn unsorted_cdf_rejected() {
        SizeCdf::new(vec![(10.0, 0.0), (5.0, 1.0)]);
    }
}
