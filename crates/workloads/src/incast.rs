//! Synchronized-burst (incast) generation.
//!
//! The paper argues TCN's instantaneous marking reacts faster than CoDel
//! to "bursty datacenter traffic (e.g., incast \[33, 34\])" (§4.3); the
//! burst-tolerance ablation bench uses this generator to test that claim
//! directly: `fanout` senders each fire `size` bytes at the same receiver
//! within a tiny jitter window.

use tcn_net::FlowSpec;
use tcn_sim::{Rng, Time};

/// Generate one incast episode: every sender in `senders` starts a
/// `size`-byte flow to `receiver` at `start`, jittered uniformly within
/// `jitter` (zero jitter = perfectly synchronized).
pub fn gen_incast(
    rng: &mut Rng,
    senders: &[u32],
    receiver: u32,
    size: u64,
    start: Time,
    jitter: Time,
    service: u8,
) -> Vec<FlowSpec> {
    assert!(!senders.is_empty());
    assert!(!senders.contains(&receiver), "receiver among senders");
    senders
        .iter()
        .map(|&src| {
            let j = if jitter.is_zero() {
                Time::ZERO
            } else {
                Time::from_ps(rng.gen_range(jitter.as_ps()))
            };
            FlowSpec {
                src,
                dst: receiver,
                size,
                start: start.saturating_add(j),
                service,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_when_zero_jitter() {
        let mut rng = Rng::new(1);
        let flows = gen_incast(
            &mut rng,
            &[0, 1, 2, 3],
            8,
            32_000,
            Time::from_ms(1),
            Time::ZERO,
            2,
        );
        assert_eq!(flows.len(), 4);
        assert!(flows.iter().all(|f| f.start == Time::from_ms(1)));
        assert!(flows.iter().all(|f| f.size == 32_000 && f.dst == 8));
        assert!(flows.iter().all(|f| f.service == 2));
    }

    #[test]
    fn jitter_bounded() {
        let mut rng = Rng::new(2);
        let flows = gen_incast(
            &mut rng,
            &(0..32).collect::<Vec<_>>(),
            40,
            32_000,
            Time::from_ms(1),
            Time::from_us(10),
            0,
        );
        for f in &flows {
            assert!(f.start >= Time::from_ms(1));
            assert!(f.start < Time::from_ms(1) + Time::from_us(10));
        }
        // With 32 senders and 10 us of jitter, starts should differ.
        assert!(flows.iter().any(|f| f.start != flows[0].start));
    }

    #[test]
    #[should_panic(expected = "receiver among senders")]
    fn rejects_self_incast() {
        let mut rng = Rng::new(3);
        gen_incast(&mut rng, &[0, 1], 1, 1000, Time::ZERO, Time::ZERO, 0);
    }
}
