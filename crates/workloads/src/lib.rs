//! `tcn-workloads` — realistic datacenter traffic generation (paper
//! Fig. 4 and §6 benchmark traffic).
//!
//! * [`cdf`] — the four empirical flow-size distributions the paper
//!   evaluates with: web search (DCTCP \[6\]), data mining (VL2 \[17\]), and
//!   the Facebook Hadoop and cache workloads (Roy et al. \[27\]); plus
//!   inverse-CDF sampling.
//! * [`arrivals`] — open-loop Poisson flow arrival generation sized to a
//!   target load, in the two patterns the paper uses: many-to-one (the
//!   testbed's 8-senders-to-one-client pattern, §6.1.2) and all-to-all
//!   pairs split into services (the leaf-spine simulations, §6.2).
//! * [`incast`] — synchronized-burst generation for the burst-tolerance
//!   ablation (§4.3 argues TCN reacts faster than CoDel to incast).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod cdf;
pub mod incast;

pub use arrivals::{gen_all_to_all, gen_many_to_one, poisson_rate_for_load};
pub use cdf::{SizeCdf, Workload};
pub use incast::gen_incast;
