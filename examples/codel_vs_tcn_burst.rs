//! TCN vs CoDel under bursty incast (paper §4.3: "faster reaction to
//! bursty traffic").
//!
//! Waves of synchronized senders slam one receiver. CoDel needs a full
//! `interval` of persistently bad sojourn before its first mark, so each
//! wave rides unmarked until the shared buffer overflows; TCN marks the
//! first over-threshold packet it dequeues. The difference shows up as
//! timeouts and tail FCT.
//!
//! Run: `cargo run --release --example codel_vs_tcn_burst [-- --fanout 48]`

use tcn_repro::prelude::*;

fn run_scheme(name: &str, fanout: usize, make_aqm: impl Fn() -> Box<dyn Aqm> + 'static) {
    let make_aqm = std::rc::Rc::new(make_aqm);
    let mut sim = single_switch(
        fanout + 1,
        Rate::from_gbps(10),
        Time::from_us(20),
        TcpConfig::preset(Cc::Dctcp).sim(),
        TaggingPolicy::Fixed,
        move || {
            let make_aqm = make_aqm.clone();
            PortSetup {
                nqueues: 2,
                buffer: Some(300_000),
                tx_rate: None,
                make_sched: Box::new(|| Box::new(Dwrr::equal(2, 1_500))),
                make_aqm: Box::new(move || make_aqm()),
            }
        },
    ).expect("topology is well-formed");
    let senders: Vec<u32> = (0..fanout as u32).collect();
    let mut rng = Rng::new(5);
    for wave in 0..8u64 {
        for spec in gen_incast(
            &mut rng,
            &senders,
            fanout as u32,
            64_000,
            Time::from_ms(1 + 2 * wave),
            Time::from_us(5),
            0,
        ) {
            sim.add_flow(spec);
        }
    }
    assert!(sim.run_to_completion(Time::from_secs(60)).expect("run"));
    let fcts: Vec<f64> = sim
        .fct_records()
        .iter()
        .map(|r| r.fct.as_us_f64())
        .collect();
    println!(
        "{name:<8} avg {:>7.0} us   p99 {:>8.0} us   timeouts {:>4}   drops {:>5}",
        tcn_stats::mean(&fcts),
        tcn_stats::percentile(&fcts, 99.0),
        sim.total_timeouts(),
        sim.total_drops()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fanout = args
        .iter()
        .position(|a| a == "--fanout")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    println!("incast: 8 waves x {fanout} senders x 64 KB into one 10 Gbps port\n");
    run_scheme("TCN", fanout, || Box::new(Tcn::new(Time::from_us(78))));
    run_scheme("CoDel", fanout, || {
        Box::new(CoDel::new(Time::from_us(16), Time::from_us(340)))
    });
    run_scheme("RED", fanout, || Box::new(RedEcn::per_queue(97_500)));
}
