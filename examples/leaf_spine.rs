//! A multi-rack datacenter in a few lines: 4 leaves × 4 spines ×
//! 4 hosts at 10 Gbps with ECMP, all four paper workloads mixed over 7
//! services, PIAS tagging and TCN over SP/DWRR at every switch port —
//! the shape of the paper's §6.2 simulations, scaled to run in seconds.
//!
//! Run: `cargo run --release --example leaf_spine [-- --paper]`
//! (`--paper` builds the full 144-host, 12×12 fabric.)

use tcn_repro::prelude::*;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let topo = if paper_scale {
        LeafSpineConfig::paper()
    } else {
        LeafSpineConfig::small()
    };
    let tcn_t = Time::from_us(78); // paper's DCTCP threshold at 10 Gbps
    let mut sim = NetworkBuilder::leaf_spine(topo)
        .transport(TcpConfig::preset(Cc::Dctcp).sim())
        .tagging(TaggingPolicy::Pias { threshold: 100_000 })
        .queues(8)
        .buffer(300_000)
        .scheduler(|| Box::new(SpHybrid::new(1, Dwrr::equal(7, 1_500))))
        .aqm(move || Box::new(Tcn::new(tcn_t)))
        .build()
        .expect("topology is well-formed");

    let n_flows = if paper_scale { 20_000 } else { 3_000 };
    let cdfs: Vec<SizeCdf> = Workload::ALL.iter().map(|w| w.cdf()).collect();
    let mut rng = Rng::new(99);
    for spec in gen_all_to_all(
        &mut rng,
        n_flows,
        topo.num_hosts() as u32,
        &cdfs,
        0.6,
        Rate::from_gbps(10),
        7,
        Time::ZERO,
    ) {
        sim.add_flow(spec);
    }

    let t0 = std::time::Instant::now(); // lint:allow(no-wallclock): example prints elapsed wall time, never feeds the sim
    assert!(sim.run_to_completion(Time::from_secs(1_000)).expect("run"));
    let wall = t0.elapsed();

    let b = FctBreakdown::from_records(&sim.fct_records());
    println!(
        "{} hosts, {} flows, 4 workloads over 7 services @ 60% load",
        topo.num_hosts(),
        b.count
    );
    println!("  overall avg FCT : {:.0} us", b.overall_avg_us);
    println!(
        "  small flows     : avg {:.0} us, p99 {:.0} us ({} flows)",
        b.small_avg_us, b.small_p99_us, b.small_count
    );
    println!(
        "  large flows     : avg {:.1} ms ({} flows)",
        b.large_avg_us / 1_000.0,
        b.large_count
    );
    println!("  fabric drops    : {}", sim.total_drops());
    println!(
        "  simulated {} events in {:.1}s wall ({:.1}M events/s)",
        sim.events_processed(),
        wall.as_secs_f64(),
        sim.events_processed() as f64 / wall.as_secs_f64() / 1e6
    );
}
