//! Traffic prioritization with PIAS flow scheduling (paper §6.1.3) in
//! miniature: one strict-priority queue carries the first 100 KB of
//! every flow; four DWRR service queues carry the rest. TCN keeps the
//! shared buffer shallow so the high-priority queue never loses packets
//! to low-priority pressure.
//!
//! Run: `cargo run --release --example prioritization`

use tcn_repro::prelude::*;

fn main() {
    let rtt = Time::from_us(250);
    let tcn_t = standard_sojourn_threshold(rtt, 1.0);
    let mut sim = single_switch(
        9,
        Rate::from_gbps(1),
        Time::from_us(62),
        TcpConfig::preset(Cc::Dctcp).testbed(),
        TaggingPolicy::Pias { threshold: 100_000 },
        move || PortSetup {
            nqueues: 5, // queue 0 strict + 4 service queues
            buffer: Some(96_000),
            tx_rate: None,
            make_sched: Box::new(|| Box::new(SpHybrid::new(1, Dwrr::equal(4, 1_500)))),
            make_aqm: Box::new(move || Box::new(Tcn::new(tcn_t))),
        },
    ).expect("topology is well-formed");

    // Web-search workload at 70 % load toward host 8; services use
    // DSCPs 1–4 (DSCP 0 is the PIAS express lane).
    let mut rng = Rng::new(7);
    let senders: Vec<u32> = (0..8).collect();
    for spec in gen_many_to_one(
        &mut rng,
        2_000,
        &senders,
        8,
        &Workload::WebSearch.cdf(),
        0.7,
        Rate::from_gbps(1),
        &[1, 2, 3, 4],
        Time::ZERO,
    ) {
        sim.add_flow(spec);
    }
    assert!(sim.run_to_completion(Time::from_secs(1_000)).expect("run"));

    let b = FctBreakdown::from_records(&sim.fct_records());
    println!("PIAS two-priority + SP/DWRR + TCN, web search @ 70% load\n");
    println!("flows completed : {}", b.count);
    println!("small avg FCT   : {:.0} us", b.small_avg_us);
    println!("small p99 FCT   : {:.0} us", b.small_p99_us);
    println!("large avg FCT   : {:.0} us", b.large_avg_us);
    println!("small timeouts  : {}", b.small_timeouts);

    // Where did the traffic go? The receiver port shows the split.
    let port = sim.port(tcn_net::single_switch_downlink(8));
    println!(
        "\nreceiver port: {} pkts, {} marks, {} drops",
        port.stats().tx_packets,
        port.stats().total_marks(),
        port.stats().total_drops()
    );
    println!(
        "\nEvery flow's first 100 KB rode the strict queue, so small flows\n\
         finish at RPC latency even while elephants saturate the link."
    );
}
