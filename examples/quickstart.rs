//! Quickstart: TCN over WFQ on a tiny star network.
//!
//! Builds a 4-host, 1 Gbps single-switch network where every switch port
//! runs equal-weight WFQ over two service queues with TCN marking, runs
//! a latency-sensitive service next to a bandwidth-hungry one, and
//! prints the flow completion times plus the switch marking counters.
//!
//! Run: `cargo run --release --example quickstart`

use tcn_repro::prelude::*;

fn main() {
    // Testbed-flavoured parameters: 1 Gbps, base RTT 250 µs, DCTCP,
    // TCN threshold T = RTT × λ.
    let rtt = Time::from_us(250);
    let tcn_t = standard_sojourn_threshold(rtt, 1.0);
    let mut sim = single_switch(
        4,
        Rate::from_gbps(1),
        Time::from_us(62), // per-link propagation; RTT ≈ 4×
        TcpConfig::preset(Cc::Dctcp).testbed(),
        TaggingPolicy::Fixed,
        || PortSetup {
            nqueues: 2,
            buffer: Some(96_000),
            tx_rate: None,
            make_sched: Box::new(|| Box::new(Wfq::equal(2))),
            make_aqm: Box::new(move || Box::new(Tcn::new(tcn_t))),
        },
    ).expect("topology is well-formed");

    // Service 0: a burst of small RPCs from host 0. Service 1: one bulk
    // transfer from host 1. Both target host 3.
    let mut rpcs = Vec::new();
    for i in 0..20 {
        rpcs.push(sim.add_flow(FlowSpec {
            src: 0,
            dst: 3,
            size: 20_000,
            start: Time::from_ms(5 + i),
            service: 0,
        }));
    }
    let bulk = sim.add_flow(FlowSpec {
        src: 1,
        dst: 3,
        size: 20_000_000,
        start: Time::ZERO,
        service: 1,
    });

    assert!(sim.run_to_completion(Time::from_secs(10)).expect("run"));

    let records = sim.fct_records();
    let rpc_fcts: Vec<f64> = records
        .iter()
        .filter(|r| rpcs.contains(&r.flow))
        .map(|r| r.fct.as_us_f64())
        .collect();
    let bulk_fct = records.iter().find(|r| r.flow == bulk).unwrap().fct;

    println!("20 KB RPCs next to a 20 MB bulk transfer, TCN over WFQ:");
    println!(
        "  RPC FCT: mean {:.0} us, p99 {:.0} us",
        tcn_stats::mean(&rpc_fcts),
        tcn_stats::percentile(&rpc_fcts, 99.0)
    );
    println!("  bulk FCT: {bulk_fct}");

    // The receiver-side switch port carries the contention; link index
    // = host*2 + 1 in the star builder.
    let port = sim.port(tcn_net::single_switch_downlink(3));
    let s = port.stats();
    println!(
        "  switch port: {} pkts, {} TCN marks (dequeue), {} drops",
        s.tx_packets,
        s.dequeue_marks,
        s.total_drops()
    );
}
