//! Inter-service traffic isolation (paper §2.2, §6.1.2) in miniature.
//!
//! Four services share a 1 Gbps port under DWRR, each with its own
//! queue. We offer a realistic web-search workload at 60 % load and
//! compare TCN against per-queue ECN/RED with the standard threshold —
//! the "current practice" the paper improves on — printing the paper's
//! FCT breakdown for both.
//!
//! Run: `cargo run --release --example traffic_isolation [-- --flows 3000]`

use tcn_repro::prelude::*;

fn run_scheme(name: &str, make_aqm: impl Fn() -> Box<dyn Aqm> + 'static) -> FctBreakdown {
    let make_aqm = std::rc::Rc::new(make_aqm);
    let mut sim = single_switch(
        9,
        Rate::from_gbps(1),
        Time::from_us(62),
        TcpConfig::preset(Cc::Dctcp).testbed(),
        TaggingPolicy::Fixed,
        move || {
            let make_aqm = make_aqm.clone();
            PortSetup {
                nqueues: 4,
                buffer: Some(96_000),
                tx_rate: None,
                make_sched: Box::new(|| Box::new(Dwrr::equal(4, 1_500))),
                make_aqm: Box::new(move || make_aqm()),
            }
        },
    ).expect("topology is well-formed");

    let flows: usize = std::env::args()
        .skip_while(|a| a != "--flows")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500);
    let mut rng = Rng::new(42);
    let senders: Vec<u32> = (0..8).collect();
    for spec in gen_many_to_one(
        &mut rng,
        flows,
        &senders,
        8,
        &Workload::WebSearch.cdf(),
        0.6,
        Rate::from_gbps(1),
        &[0, 1, 2, 3],
        Time::ZERO,
    ) {
        sim.add_flow(spec);
    }
    assert!(
        sim.run_to_completion(Time::from_secs(1_000)).expect("run"),
        "{name}: flows did not finish"
    );
    FctBreakdown::from_records(&sim.fct_records())
}

fn main() {
    let rtt = Time::from_us(250);
    let tcn = run_scheme("TCN", move || {
        Box::new(Tcn::new(standard_sojourn_threshold(rtt, 1.0)))
    });
    let red = run_scheme("RED", move || {
        Box::new(RedEcn::per_queue(standard_queue_threshold(
            Rate::from_gbps(1),
            rtt,
            1.024,
        )))
    });

    println!("web-search workload @ 60% load, DWRR x4 queues, DCTCP\n");
    println!("{:<18} {:>10} {:>10} {:>10} {:>10}", "scheme", "avg us", "small avg", "small p99", "large avg");
    for (name, b) in [("TCN", &tcn), ("RED-queue(std)", &red)] {
        println!(
            "{:<18} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            name, b.overall_avg_us, b.small_avg_us, b.small_p99_us, b.large_avg_us
        );
    }
    let norm = red.normalized_to(&tcn);
    println!(
        "\nRED/TCN ratios — small avg: {:.2}x, small p99: {:.2}x, large avg: {:.2}x",
        norm.small_avg, norm.small_p99, norm.large_avg
    );
    println!("(paper Fig. 6 shape: >1x for small flows, ≈1x for large)");
}
