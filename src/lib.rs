//! **tcn-repro** — a full reproduction of *Enabling ECN over Generic
//! Packet Scheduling* (Bai, Chen, Chen, Kim, Wu — CoNEXT 2016) as a Rust
//! workspace: the TCN AQM, every baseline it is compared against, the
//! packet schedulers it must coexist with, the ECN-capable transports it
//! is evaluated over, and a deterministic packet-level datacenter network
//! simulator that regenerates every figure of the paper's evaluation.
//!
//! This crate is the facade: it re-exports the workspace crates so an
//! application can depend on one name. See the README for the layout and
//! DESIGN.md for the paper-to-code map.
//!
//! # Quickstart
//!
//! Mark packets with TCN behind any scheduler on a simulated switch:
//!
//! ```
//! use tcn_repro::prelude::*;
//!
//! // A 3-host star at 1 Gbps: two senders, one receiver. Every switch
//! // port runs WFQ over 2 queues with TCN marking at T = RTT × λ.
//! let rtt = Time::from_us(250);
//! let mut sim = NetworkBuilder::single_switch(3, Rate::from_gbps(1), Time::from_us(62))
//!     .transport(TcpConfig::preset(Cc::Dctcp).testbed())
//!     .queues(2)
//!     .buffer(96_000)
//!     .scheduler(|| Box::new(Wfq::equal(2)))
//!     .aqm(move || Box::new(Tcn::new(standard_sojourn_threshold(rtt, 1.0))))
//!     .build()
//!     .expect("topology is well-formed");
//!
//! // One 1 MB flow from host 0 to host 2.
//! let flow = sim.add_flow(FlowSpec {
//!     src: 0,
//!     dst: 2,
//!     size: 1_000_000,
//!     start: Time::ZERO,
//!     service: 0,
//! });
//! assert!(sim.run_to_completion(Time::from_secs(5)).expect("run"));
//! assert_eq!(sim.delivered_bytes(flow), 1_000_000);
//! let fct = sim.fct_records()[0].fct;
//! assert!(fct > Time::from_ms(8)); // 1 MB cannot beat the line rate
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tcn_baselines as baselines;
pub use tcn_core as core;
pub use tcn_experiments as experiments;
pub use tcn_net as net;
pub use tcn_sched as sched;
pub use tcn_sim as sim;
pub use tcn_stats as stats;
pub use tcn_telemetry as telemetry;
pub use tcn_transport as transport;
pub use tcn_workloads as workloads;

/// The names almost every user wants in scope.
pub mod prelude {
    pub use tcn_baselines::{CoDel, IdealRed, MqEcn, OracleRed, Pie, RedEcn};
    pub use tcn_core::{
        standard_queue_threshold, standard_sojourn_threshold, Aqm, EcnCodepoint, FlowId, Packet,
        PacketQueue, ProbabilisticTcn, Tcn,
    };
    pub use tcn_net::{
        dumbbell, leaf_spine, single_switch, FlowSpec, LeafSpineConfig, NetworkBuilder, NetworkSim,
        PortSetup, ProbeConfig, TaggingPolicy, TransportChoice,
    };
    pub use tcn_sched::{Dwrr, Fifo, Pifo, Scheduler, SpHybrid, StfqRank, StrictPriority, Wfq, Wrr};
    pub use tcn_sim::{Rate, Rng, Time};
    pub use tcn_stats::{FctBreakdown, GoodputTracker, P2Quantile, TimeSeries};
    pub use tcn_telemetry::{Event, MemorySink, Probe, Sink, Telemetry};
    pub use tcn_transport::{Cc, TcpConfig, TcpReceiver, TcpSender};
    pub use tcn_workloads::{gen_all_to_all, gen_incast, gen_many_to_one, SizeCdf, Workload};
}
