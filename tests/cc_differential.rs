//! Congestion-control refactor byte-identity: DCTCP and ECN* routed
//! through the `CongestionControl` trait must reproduce the
//! pre-refactor sender *exactly* — same FCTs, same drops, same
//! timeouts, in every figure-facing number. The pins below are FNV-1a
//! hashes of the full fig6-slice `SweepResult` JSON captured on the
//! commit immediately before the trait existed; any float reordered,
//! any RNG draw added, any packet field touched on the wire shows up
//! here as a hash mismatch.
//!
//! The dispatch knobs are process-wide defaults, so these tests
//! serialize on one lock like `dispatch_differential.rs` does.

use std::sync::Mutex;

use tcn_experiments::checkpoint::fnv1a;
use tcn_experiments::common::Scale;
use tcn_experiments::fct_sweep::{self, SweepConfig};
use tcn_experiments::json::ToJson;
use tcn_net::TransportChoice;

/// Serializes tests that run sweeps with thread-count overrides.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// The fig6 slice the pre-refactor hashes were captured on.
fn slice_scale() -> Scale {
    Scale {
        flows: 300,
        loads: &[0.8],
        seed: 11,
    }
}

/// Full-sweep JSON hash for `cfg` at a worker-thread count.
fn slice_hash(cfg: &SweepConfig, threads: usize) -> u64 {
    let res = fct_sweep::run_schemes_with_threads(
        cfg,
        &slice_scale(),
        &cfg.schemes(),
        threads,
    );
    fnv1a(&res.to_json().pretty())
}

/// DCTCP through the trait == DCTCP before the trait, at 1 and 4
/// worker threads. Hash captured pre-refactor (see module docs).
#[test]
fn dctcp_through_trait_is_byte_identical_to_pre_refactor() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SweepConfig::fig6();
    for threads in [1usize, 4] {
        assert_eq!(
            slice_hash(&cfg, threads),
            0x75348d51cf0d1563,
            "DCTCP fig6 slice diverged from the pre-refactor sender at \
             {threads} thread(s)"
        );
    }
}

/// ECN* through the trait == ECN* before the trait, at 1 and 4 worker
/// threads.
#[test]
fn ecnstar_through_trait_is_byte_identical_to_pre_refactor() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SweepConfig {
        transport: TransportChoice::SimEcnStar,
        ..SweepConfig::fig6()
    };
    for threads in [1usize, 4] {
        assert_eq!(
            slice_hash(&cfg, threads),
            0x0af59e3f92f1cf83,
            "ECN* fig6 slice diverged from the pre-refactor sender at \
             {threads} thread(s)"
        );
    }
}
