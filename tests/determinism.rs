//! Whole-simulation reproducibility: equal seeds ⇒ bit-identical
//! results, across topologies and schemes. This is what makes every
//! number in EXPERIMENTS.md re-derivable.

use tcn_repro::prelude::*;

fn leaf_spine_fcts(seed: u64) -> Vec<u64> {
    let topo = LeafSpineConfig {
        leaves: 3,
        spines: 3,
        hosts_per_leaf: 3,
        rate: Rate::from_gbps(10),
        host_delay: Time::from_us(20),
        fabric_delay: Time::from_ns(1300),
    };
    let mut sim = leaf_spine(
        topo,
        TcpConfig::preset(Cc::Dctcp).sim(),
        TaggingPolicy::Pias { threshold: 100_000 },
        || PortSetup {
            nqueues: 4,
            buffer: Some(300_000),
            tx_rate: None,
            make_sched: Box::new(|| Box::new(SpHybrid::new(1, Dwrr::equal(3, 1_500)))),
            make_aqm: Box::new(|| Box::new(Tcn::new(Time::from_us(78)))),
        },
    ).expect("topology is well-formed");
    let cdfs: Vec<SizeCdf> = vec![Workload::WebSearch.cdf(), Workload::Cache.cdf()];
    let mut rng = Rng::new(seed);
    for spec in gen_all_to_all(
        &mut rng,
        400,
        topo.num_hosts() as u32,
        &cdfs,
        0.6,
        Rate::from_gbps(10),
        3,
        Time::ZERO,
    ) {
        sim.add_flow(spec);
    }
    assert!(sim.run_to_completion(Time::from_secs(100)).expect("run"));
    sim.fct_records().iter().map(|r| r.fct.as_ps()).collect()
}

#[test]
fn identical_seeds_identical_runs() {
    let a = leaf_spine_fcts(42);
    let b = leaf_spine_fcts(42);
    assert_eq!(a, b, "same seed must reproduce every FCT exactly");
    assert_eq!(a.len(), 400);
}

#[test]
fn different_seeds_differ() {
    let a = leaf_spine_fcts(42);
    let b = leaf_spine_fcts(43);
    assert_ne!(a, b);
}

#[test]
fn probabilistic_aqm_still_deterministic() {
    // Randomized marking draws come from a seeded RNG inside the AQM, so
    // even probabilistic schemes replay exactly.
    let run = || {
        let mut sim = single_switch(
            3,
            Rate::from_gbps(1),
            Time::from_us(62),
            TcpConfig::preset(Cc::Dctcp).testbed(),
            TaggingPolicy::Fixed,
            || PortSetup {
                nqueues: 2,
                buffer: Some(96_000),
                tx_rate: None,
                make_sched: Box::new(|| Box::new(Wfq::equal(2))),
                make_aqm: Box::new(|| {
                    Box::new(ProbabilisticTcn::new(
                        Time::from_us(128),
                        Time::from_us(512),
                        0.7,
                        1234,
                    ))
                }),
            },
        ).expect("topology is well-formed");
        for i in 0..20u32 {
            sim.add_flow(FlowSpec {
                src: i % 2,
                dst: 2,
                size: 200_000 + u64::from(i) * 10_000,
                start: Time::from_us(u64::from(i) * 50),
                service: (i % 2) as u8,
            });
        }
        assert!(sim.run_to_completion(Time::from_secs(100)).expect("run"));
        sim.fct_records()
            .iter()
            .map(|r| r.fct.as_ps())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
