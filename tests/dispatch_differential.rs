//! Dispatch-mode byte-identity: the batched same-timestamp drain (with
//! its per-port TxDone coalescing) must be *indistinguishable* from the
//! legacy per-event loop in every figure-facing number — same FCTs,
//! same drops, same timeouts — across figure slices, fuzz seeds, and
//! thread counts. Hybrid mode is opt-in, so hybrid-off must likewise
//! equal the default exactly.
//!
//! The dispatch knobs are process-wide defaults (`tcn_net`'s atomics),
//! so every test here serializes on one lock and restores the defaults
//! before returning.

use std::sync::Mutex;

use tcn_experiments::common::Scale;
use tcn_experiments::fct_sweep::{self, SweepConfig};
use tcn_experiments::json::ToJson;
use tcn_experiments::scenario::{run_fuzz, FuzzOpts};
use tcn_net::{set_default_dispatch_mode, set_default_hybrid, DispatchMode};

/// Serializes tests that flip the process-wide dispatch defaults.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// A one-load slice of a figure sweep — enough flows for queues to
/// build and drop, small enough to run four configurations per test.
fn slice_scale() -> Scale {
    Scale {
        flows: 300,
        loads: &[0.8],
        seed: 11,
    }
}

/// Run `cfg` under the given dispatch configuration and render the
/// whole `SweepResult` (every cell, every quarantine) to JSON text —
/// the byte-identity unit of comparison.
fn sweep_bytes(
    cfg: &SweepConfig,
    threads: usize,
    mode: DispatchMode,
    hybrid: bool,
) -> String {
    set_default_dispatch_mode(mode);
    set_default_hybrid(hybrid);
    let res = fct_sweep::run_schemes_with_threads(
        cfg,
        &slice_scale(),
        &cfg.schemes(),
        threads,
    );
    set_default_dispatch_mode(DispatchMode::Batched);
    set_default_hybrid(false);
    res.to_json().pretty()
}

fn assert_slice_mode_invariant(cfg: &SweepConfig, tag: &str) {
    let reference = sweep_bytes(cfg, 1, DispatchMode::Batched, false);
    assert!(
        !reference.is_empty() && reference.contains("cells"),
        "{tag}: reference run produced no output"
    );
    for threads in [1usize, 4] {
        for mode in [DispatchMode::Batched, DispatchMode::PerEvent] {
            let got = sweep_bytes(cfg, threads, mode, false);
            assert_eq!(
                got, reference,
                "{tag}: {mode:?} dispatch at {threads} thread(s) diverged from \
                 batched/1-thread reference"
            );
        }
    }
}

/// Fig. 6 slice (DWRR switch ports — coalescing-ineligible scheduler,
/// so this exercises the plain batched drain): byte-identical output
/// across both dispatch modes and TCN_THREADS ∈ {1, 4}.
#[test]
fn fig6_slice_is_dispatch_mode_invariant() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_slice_mode_invariant(&SweepConfig::fig6(), "fig6");
}

/// Fig. 7 slice (WFQ switch ports — a pure-idle-select scheduler, so
/// batched mode actually coalesces trailing TxDone wakes here): still
/// byte-identical across modes and thread counts.
#[test]
fn fig7_slice_is_dispatch_mode_invariant() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_slice_mode_invariant(&SweepConfig::fig7(), "fig7");
}

/// Hybrid *off* must be a no-op: explicitly disabling the fluid fast
/// path yields the exact bytes the default configuration yields.
#[test]
fn hybrid_off_matches_default_exactly() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SweepConfig::fig6();
    let default = sweep_bytes(&cfg, 4, DispatchMode::Batched, false);
    // `set_default_hybrid(false)` is the factory state; run it again
    // after a hybrid-on run to prove the toggle leaves no residue.
    set_default_hybrid(true);
    set_default_hybrid(false);
    let off_again = sweep_bytes(&cfg, 4, DispatchMode::Batched, false);
    assert_eq!(off_again, default, "hybrid-off run diverged from default");
}

/// The seeded scenario fuzzer — flows under link flaps, loss, jitter
/// and live reconfiguration — reports byte-identical per-seed lines
/// under both dispatch modes at 1 and 4 worker threads.
#[test]
fn fuzz_seeds_are_dispatch_mode_invariant() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let opts = |threads: usize| FuzzOpts {
        seeds: 8,
        master_seed: 0xC4A0_5EED,
        step_budget: 6,
        threads,
        quarantine_dir: None,
    };
    set_default_dispatch_mode(DispatchMode::Batched);
    let reference = run_fuzz(&opts(1));
    assert_eq!(reference.seeds, 8);
    assert_eq!(reference.lines.len(), 8);
    for threads in [1usize, 4] {
        for mode in [DispatchMode::Batched, DispatchMode::PerEvent] {
            set_default_dispatch_mode(mode);
            let got = run_fuzz(&opts(threads));
            set_default_dispatch_mode(DispatchMode::Batched);
            assert_eq!(
                got.lines, reference.lines,
                "fuzz lines diverged under {mode:?} dispatch at {threads} thread(s)"
            );
            assert_eq!(
                got.failures.len(),
                reference.failures.len(),
                "fuzz failure count diverged under {mode:?} at {threads} thread(s)"
            );
        }
    }
}
