//! Cross-crate integration tests: the paper's central claim exercised
//! end to end — TCN composes with *any* scheduler (including ones
//! MQ-ECN cannot touch) while preserving the scheduling policy and
//! keeping queueing delay near the threshold.

use tcn_repro::prelude::*;

/// Build a 3-sender/1-receiver star where every switch port runs the
/// given scheduler factory with TCN marking.
fn star_with(
    nqueues: usize,
    mk_sched: impl Fn() -> Box<dyn Scheduler> + Clone + 'static,
) -> NetworkSim {
    let tcn_t = standard_sojourn_threshold(Time::from_us(250), 1.0);
    single_switch(
        4,
        Rate::from_gbps(1),
        Time::from_us(62),
        TcpConfig::preset(Cc::Dctcp).testbed(),
        TaggingPolicy::Fixed,
        move || {
            let mk_sched = mk_sched.clone();
            PortSetup {
                nqueues,
                buffer: Some(96_000),
                tx_rate: None,
                make_sched: Box::new(move || mk_sched()),
                make_aqm: Box::new(move || Box::new(Tcn::new(tcn_t))),
            }
        },
    )
    .expect("star topology is well-formed")
}

/// Start one long flow per service (hosts 0..2 → host 3) and return the
/// per-service goodput shares measured over [100 ms, 400 ms].
fn service_shares(mut sim: NetworkSim, services: &[u8]) -> Vec<f64> {
    let flows: Vec<FlowId> = services
        .iter()
        .enumerate()
        .map(|(i, &svc)| {
            sim.add_flow(FlowSpec {
                src: i as u32,
                dst: 3,
                size: 1 << 40,
                start: Time::ZERO,
                service: svc,
            })
        })
        .collect();
    sim.run_until(Time::from_ms(100)).expect("run");
    let before: Vec<u64> = flows.iter().map(|&f| sim.delivered_bytes(f)).collect();
    sim.run_until(Time::from_ms(400)).expect("run");
    let deltas: Vec<f64> = flows
        .iter()
        .zip(&before)
        .map(|(&f, &b)| (sim.delivered_bytes(f) - b) as f64)
        .collect();
    let total: f64 = deltas.iter().sum();
    assert!(total > 0.0);
    deltas.iter().map(|d| d / total).collect()
}

#[test]
fn tcn_preserves_wfq_weights() {
    // Weights 2:1:1 → byte shares 50/25/25.
    let sim = star_with(3, || Box::new(Wfq::new(vec![2.0, 1.0, 1.0])));
    let shares = service_shares(sim, &[0, 1, 2]);
    assert!((shares[0] - 0.50).abs() < 0.05, "shares {shares:?}");
    assert!((shares[1] - 0.25).abs() < 0.05, "shares {shares:?}");
    assert!((shares[2] - 0.25).abs() < 0.05, "shares {shares:?}");
}

#[test]
fn tcn_preserves_dwrr_quanta() {
    let sim = star_with(3, || Box::new(Dwrr::new(vec![3_000, 1_500, 1_500])));
    let shares = service_shares(sim, &[0, 1, 2]);
    assert!((shares[0] - 0.50).abs() < 0.05, "shares {shares:?}");
    assert!((shares[1] - 0.25).abs() < 0.05, "shares {shares:?}");
}

#[test]
fn tcn_preserves_strict_priority() {
    // Queue 0 strictly dominates: the other services starve while it is
    // backlogged. (SP over saturated long flows → near-total capture.)
    let sim = star_with(2, || Box::new(StrictPriority::new(2)));
    let shares = service_shares(sim, &[0, 1, 1]);
    assert!(shares[0] > 0.9, "SP queue should dominate: {shares:?}");
}

#[test]
fn tcn_preserves_pifo_stfq_weights() {
    // The "beyond MQ-ECN" case: a programmable PIFO scheduler running
    // STFQ ranks with weights 3:1 — no rounds anywhere, TCN unaffected.
    let sim = star_with(2, || Box::new(Pifo::new(2, StfqRank::new(vec![3.0, 1.0]))));
    let shares = service_shares(sim, &[0, 1, 1]);
    // Queues get 75/25; services 1&2 share queue 1.
    assert!((shares[0] - 0.75).abs() < 0.06, "shares {shares:?}");
}

#[test]
fn tcn_keeps_sojourn_near_threshold_under_load() {
    // With DCTCP + TCN at T, the queue's standing occupancy must hover
    // around T × drain-rate, far below the 96 KB buffer.
    let mut sim = star_with(2, || Box::new(Wfq::equal(2)));
    for i in 0..3u32 {
        sim.add_flow(FlowSpec {
            src: i,
            dst: 3,
            size: 1 << 40,
            start: Time::ZERO,
            service: (i % 2) as u8,
        });
    }
    sim.run_until(Time::from_ms(50)).expect("run");
    // Sample the receiver downlink occupancy for a while.
    let link = tcn_net::single_switch_downlink(3);
    let mut peak = 0u64;
    for step in 0..200u64 {
        sim.run_until(Time::from_ms(50) + Time::from_us(step * 100)).expect("run");
        peak = peak.max(sim.port(link).occupancy());
    }
    // T = 256 us at 1 Gbps = 32 KB equivalent; DCTCP hovers around it.
    assert!(peak > 8_000, "queue never built? peak {peak}");
    assert!(peak < 90_000, "queue ran away: peak {peak}");
}

#[test]
fn probabilistic_tcn_also_preserves_wfq() {
    // The §4.3 extension composes the same way.
    let mk = || {
        let t = Time::from_us(200);
        PortSetup {
            nqueues: 2,
            buffer: Some(96_000),
            tx_rate: None,
            make_sched: Box::new(|| Box::new(Wfq::equal(2))),
            make_aqm: Box::new(move || {
                Box::new(ProbabilisticTcn::new(t / 2, t * 2, 0.8, 9))
            }),
        }
    };
    let sim = single_switch(
        4,
        Rate::from_gbps(1),
        Time::from_us(62),
        TcpConfig::preset(Cc::Dctcp).testbed(),
        TaggingPolicy::Fixed,
        mk,
    ).expect("topology is well-formed");
    let shares = service_shares(sim, &[0, 1, 1]);
    assert!((shares[0] - 0.5).abs() < 0.07, "shares {shares:?}");
}

#[test]
fn mixed_short_and_long_flows_all_complete() {
    let mut sim = star_with(4, || Box::new(Dwrr::equal(4, 1_500)));
    let mut rng = Rng::new(3);
    let senders = [0u32, 1, 2];
    for spec in gen_many_to_one(
        &mut rng,
        300,
        &senders,
        3,
        &Workload::Cache.cdf(),
        0.5,
        Rate::from_gbps(1),
        &[0, 1, 2, 3],
        Time::ZERO,
    ) {
        sim.add_flow(spec);
    }
    assert!(sim.run_to_completion(Time::from_secs(100)).expect("run"));
    let b = FctBreakdown::from_records(&sim.fct_records());
    assert_eq!(b.count, 300);
    assert!(b.small_avg_us > 0.0);
}

#[test]
fn ecnstar_and_dctcp_both_sustain_line_rate() {
    for cfg in [TcpConfig::preset(Cc::Dctcp).sim(), TcpConfig::preset(Cc::EcnStar).sim()] {
        let tcn_t = Time::from_us(100);
        let mut sim = single_switch(
            3,
            Rate::from_gbps(10),
            Time::from_us(25),
            cfg,
            TaggingPolicy::Fixed,
            move || PortSetup {
                nqueues: 1,
                buffer: Some(2_000_000),
                tx_rate: None,
                make_sched: Box::new(|| Box::new(Fifo::new())),
                make_aqm: Box::new(move || Box::new(Tcn::new(tcn_t))),
            },
        ).expect("topology is well-formed");
        let f = sim.add_flow(FlowSpec {
            src: 0,
            dst: 2,
            size: 1 << 40,
            start: Time::ZERO,
            service: 0,
        });
        sim.run_until(Time::from_ms(100)).expect("run");
        let gbps = sim.delivered_bytes(f) as f64 * 8.0 / 0.1 / 1e9;
        assert!(gbps > 8.5, "throughput {gbps} Gbps under {:?}", cfg.cc);
    }
}
