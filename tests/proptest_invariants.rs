//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use tcn_repro::prelude::*;
use tcn_repro::core::hwts::HwClock;
use tcn_repro::core::PacketKind;
use tcn_repro::sim::Rng as SimRng;

fn data_packet(payload: u32) -> Packet {
    Packet::data(FlowId(1), 0, 1, 0, payload, 40)
}

proptest! {
    /// The event queue pops every batch of randomly-timed events in
    /// non-decreasing time order, FIFO within equal times.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = tcn_repro::sim::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(Time::from_ns(t), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some(e) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(e.at >= lt);
                if e.at == lt {
                    prop_assert!(e.event > li, "FIFO tie-break violated");
                }
            }
            last = Some((e.at, e.event));
        }
    }

    /// Serialization time round-trips: bytes_in(tx_time(b)) == b for any
    /// positive rate and byte count.
    #[test]
    fn rate_roundtrip(gbps in 1u64..400, bytes in 1u64..100_000_000) {
        let r = Rate::from_gbps(gbps);
        prop_assert_eq!(r.bytes_in(r.tx_time(bytes)), bytes);
    }

    /// tx_time is additive-monotone: more bytes never serialize faster.
    #[test]
    fn tx_time_monotone(bps in 1_000u64..10_000_000_000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let r = Rate::from_bps(bps);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(r.tx_time(lo) <= r.tx_time(hi));
    }

    /// ByteIntervals agrees with a naive bit-set model.
    #[test]
    fn intervals_match_model(ranges in prop::collection::vec((0u64..500, 0u64..60), 1..40)) {
        let mut iv = tcn_repro::transport::ByteIntervals::new();
        let mut model = vec![false; 600];
        for &(start, len) in &ranges {
            let end = start + len;
            let newly = iv.insert(start, end);
            let mut fresh = 0;
            for slot in model.iter_mut().take(end as usize).skip(start as usize) {
                if !*slot {
                    fresh += 1;
                    *slot = true;
                }
            }
            prop_assert_eq!(newly, fresh);
        }
        let covered = model.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(iv.covered(), covered);
        let next = model.iter().position(|&b| !b).unwrap_or(model.len()) as u64;
        prop_assert_eq!(iv.next_expected(), next);
    }

    /// PacketQueue byte accounting survives arbitrary push/pop mixes.
    #[test]
    fn packet_queue_accounting(ops in prop::collection::vec(prop::option::of(41u32..9_000), 1..200)) {
        let mut q = PacketQueue::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(payload) => {
                    q.push_back(data_packet(payload));
                    model.push(u64::from(payload) + 40);
                }
                None => {
                    let popped = q.pop_front().map(|p| u64::from(p.size));
                    let expect = if model.is_empty() { None } else { Some(model.remove(0)) };
                    prop_assert_eq!(popped, expect);
                }
            }
            prop_assert_eq!(q.len_bytes(), model.iter().sum::<u64>());
            prop_assert_eq!(q.len_pkts(), model.len());
        }
    }

    /// TCN marks exactly when sojourn exceeds the threshold — for any
    /// (threshold, enqueue, dequeue) triple.
    #[test]
    fn tcn_marks_iff_over_threshold(t_us in 0u64..1_000, enq_us in 0u64..1_000, wait_us in 0u64..2_000) {
        use tcn_repro::core::aqm::{Aqm, StaticPortView};
        let mut tcn = Tcn::new(Time::from_us(t_us));
        let view = StaticPortView::new(1, Rate::from_gbps(10));
        let mut p = data_packet(1000);
        p.enq_ts = Time::from_us(enq_us);
        let now = Time::from_us(enq_us + wait_us);
        tcn.on_dequeue(&view, 0, &mut p, now);
        prop_assert_eq!(p.ecn.is_ce(), wait_us > t_us);
    }

    /// The 16-bit hardware timestamp recovers any sojourn below the wrap
    /// period to within one tick, regardless of absolute enqueue time.
    #[test]
    fn hwts_recovers_sojourn(enq_ns in 0u64..10_000_000, sojourn_ns in 0u64..260_000) {
        let clk = HwClock::RES_4NS;
        let enq = Time::from_ns(enq_ns);
        let deq = enq + Time::from_ns(sojourn_ns);
        let measured = clk.measure(enq, deq);
        let err = (measured.as_ns() as i64 - sojourn_ns as i64).abs();
        prop_assert!(err <= 4, "error {err} ns for sojourn {sojourn_ns} ns");
    }

    /// Workload sampling stays within the CDF's support and the
    /// quantile function is monotone.
    #[test]
    fn cdf_sample_and_quantile(seed in 0u64..1_000, p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        for wl in Workload::ALL {
            let cdf = wl.cdf();
            let mut rng = SimRng::new(seed);
            let s = cdf.sample(&mut rng);
            let max = cdf.points().last().unwrap().0 as u64;
            prop_assert!(s >= 1 && s <= max);
            let (lo, hi) = (p1.min(p2), p1.max(p2));
            prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi));
        }
    }

    /// WFQ never selects an empty queue and is work conserving under
    /// arbitrary enqueue patterns.
    #[test]
    fn wfq_work_conserving(pushes in prop::collection::vec((0usize..3, 41u32..3_000), 1..100)) {
        let mut queues = vec![PacketQueue::new(); 3];
        let mut sched = Wfq::equal(3);
        let mut now = Time::ZERO;
        let total = pushes.len();
        for (q, payload) in pushes {
            let p = data_packet(payload);
            queues[q].push_back(p.clone());
            sched.on_enqueue(&queues, q, &p, now);
        }
        let mut served = 0;
        while let Some(q) = sched.select(&queues, now) {
            prop_assert!(!queues[q].is_empty(), "selected empty queue");
            let p = queues[q].pop_front().unwrap();
            now += Rate::from_gbps(1).tx_time(u64::from(p.size));
            sched.on_dequeue(&queues, q, &p, now);
            served += 1;
            prop_assert!(served <= total);
        }
        prop_assert_eq!(served, total, "idled with backlog");
    }

    /// DWRR, same property, with random quanta.
    #[test]
    fn dwrr_work_conserving(
        quanta in prop::collection::vec(100u64..5_000, 2..5),
        pushes in prop::collection::vec((0usize..4, 41u32..3_000), 1..100),
    ) {
        let nq = quanta.len();
        let mut queues = vec![PacketQueue::new(); nq];
        let mut sched = Dwrr::new(quanta);
        let mut now = Time::ZERO;
        let mut total = 0;
        for (q, payload) in pushes {
            let q = q % nq;
            let p = data_packet(payload);
            queues[q].push_back(p.clone());
            sched.on_enqueue(&queues, q, &p, now);
            total += 1;
        }
        let mut served = 0;
        while let Some(q) = sched.select(&queues, now) {
            prop_assert!(!queues[q].is_empty());
            let p = queues[q].pop_front().unwrap();
            now += Rate::from_gbps(1).tx_time(u64::from(p.size));
            sched.on_dequeue(&queues, q, &p, now);
            served += 1;
            prop_assert!(served <= total);
        }
        prop_assert_eq!(served, total);
    }

    /// Percentile is bounded by min/max and monotone in p.
    #[test]
    fn percentile_bounds(xs in prop::collection::vec(0.0f64..1e6, 1..200), p in 0.0f64..100.0) {
        let v = tcn_stats::percentile(&xs, p);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v >= lo && v <= hi);
        prop_assert!(tcn_stats::percentile(&xs, 0.0) <= tcn_stats::percentile(&xs, 100.0));
    }

    /// The deterministic RNG's gen_range respects its bound for any
    /// seed and any bound.
    #[test]
    fn rng_range_bounds(seed: u64, n in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.gen_range(n) < n);
        }
    }
}

#[test]
fn packet_kind_is_exhaustively_modeled() {
    // A non-proptest sanity companion: the three packet kinds round-trip
    // through construction helpers.
    let d = Packet::data(FlowId(1), 0, 1, 100, 1000, 40);
    assert!(matches!(d.kind, PacketKind::Data { seq: 100, .. }));
    let a = Packet::ack(FlowId(1), 1, 0, 5, true, 40);
    assert!(matches!(a.kind, PacketKind::Ack { cum_ack: 5, ece: true }));
    let p = Packet::probe(FlowId(1), 0, 1, 9, false, 64);
    assert!(matches!(p.kind, PacketKind::Probe { probe_id: 9, reply: false }));
}
