//! Randomized (deterministic, seeded) tests over the core data
//! structures and invariants. These were originally `proptest`
//! properties; the workspace now builds fully offline, so each property
//! is driven by `tcn_sim::Rng` over a fixed seed sweep instead of a
//! shrinking framework. Failures print the offending seed/case so a
//! case can be replayed by hand.

use tcn_repro::core::hwts::HwClock;
use tcn_repro::core::PacketKind;
use tcn_repro::prelude::*;
use tcn_repro::sim::Rng as SimRng;

const CASES: u64 = 64;

fn data_packet(payload: u32) -> Packet {
    Packet::data(FlowId(1), 0, 1, 0, payload, 40)
}

/// Uniform draw in `[lo, hi)`.
fn range(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    lo + rng.gen_range(hi - lo)
}

/// The event queue pops every batch of randomly-timed events in
/// non-decreasing time order, FIFO within equal times.
#[test]
fn event_queue_total_order() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xE0E0 + case);
        let n = range(&mut rng, 1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(1_000)).collect();
        let mut q = tcn_repro::sim::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(Time::from_ns(t), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some(e) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(e.at >= lt, "case {case}: time went backwards");
                if e.at == lt {
                    assert!(e.event > li, "case {case}: FIFO tie-break violated");
                }
            }
            last = Some((e.at, e.event));
        }
    }
}

/// Serialization time round-trips: bytes_in(tx_time(b)) == b for any
/// positive rate and byte count.
#[test]
fn rate_roundtrip() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x4A7E + case);
        let gbps = range(&mut rng, 1, 400);
        let bytes = range(&mut rng, 1, 100_000_000);
        let r = Rate::from_gbps(gbps);
        assert_eq!(
            r.bytes_in(r.tx_time(bytes)),
            bytes,
            "case {case}: gbps={gbps} bytes={bytes}"
        );
    }
}

/// tx_time is additive-monotone: more bytes never serialize faster.
#[test]
fn tx_time_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x7013 + case);
        let bps = range(&mut rng, 1_000, 10_000_000_000);
        let a = rng.gen_range(1_000_000);
        let b = rng.gen_range(1_000_000);
        let r = Rate::from_bps(bps);
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(
            r.tx_time(lo) <= r.tx_time(hi),
            "case {case}: bps={bps} lo={lo} hi={hi}"
        );
    }
}

/// ByteIntervals agrees with a naive bit-set model.
#[test]
fn intervals_match_model() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x1274 + case);
        let n = range(&mut rng, 1, 40) as usize;
        let ranges: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(500), rng.gen_range(60)))
            .collect();
        let mut iv = tcn_repro::transport::ByteIntervals::new();
        let mut model = vec![false; 600];
        for &(start, len) in &ranges {
            let end = start + len;
            let newly = iv.insert(start, end);
            let mut fresh = 0;
            for slot in model.iter_mut().take(end as usize).skip(start as usize) {
                if !*slot {
                    fresh += 1;
                    *slot = true;
                }
            }
            assert_eq!(newly, fresh, "case {case}: insert [{start},{end})");
        }
        let covered = model.iter().filter(|&&b| b).count() as u64;
        assert_eq!(iv.covered(), covered, "case {case}");
        let next = model.iter().position(|&b| !b).unwrap_or(model.len()) as u64;
        assert_eq!(iv.next_expected(), next, "case {case}");
    }
}

/// PacketQueue byte accounting survives arbitrary push/pop mixes.
#[test]
fn packet_queue_accounting() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xACC0 + case);
        let n = range(&mut rng, 1, 200) as usize;
        let mut q = PacketQueue::new();
        let mut model: Vec<u64> = Vec::new();
        for _ in 0..n {
            if rng.chance(0.5) {
                let payload = range(&mut rng, 41, 9_000) as u32;
                q.push_back(data_packet(payload));
                model.push(u64::from(payload) + 40);
            } else {
                let popped = q.pop_front().map(|p| u64::from(p.size));
                let expect = if model.is_empty() {
                    None
                } else {
                    Some(model.remove(0))
                };
                assert_eq!(popped, expect, "case {case}");
            }
            assert_eq!(q.len_bytes(), model.iter().sum::<u64>(), "case {case}");
            assert_eq!(q.len_pkts(), model.len(), "case {case}");
        }
    }
}

/// TCN marks exactly when sojourn exceeds the threshold — for any
/// (threshold, enqueue, dequeue) triple.
#[test]
fn tcn_marks_iff_over_threshold() {
    use tcn_repro::core::aqm::{Aqm, StaticPortView};
    for case in 0..4 * CASES {
        let mut rng = SimRng::new(0x7C40 + case);
        let t_us = rng.gen_range(1_000);
        let enq_us = rng.gen_range(1_000);
        let wait_us = rng.gen_range(2_000);
        let mut tcn = Tcn::new(Time::from_us(t_us));
        let view = StaticPortView::new(1, Rate::from_gbps(10));
        let mut p = data_packet(1000);
        p.enq_ts = Time::from_us(enq_us);
        let now = Time::from_us(enq_us + wait_us);
        tcn.on_dequeue(&view, 0, &mut p, now);
        assert_eq!(
            p.ecn.is_ce(),
            wait_us > t_us,
            "case {case}: t={t_us}us wait={wait_us}us"
        );
    }
}

/// The 16-bit hardware timestamp recovers any sojourn below the wrap
/// period to within one tick, regardless of absolute enqueue time.
#[test]
fn hwts_recovers_sojourn() {
    for case in 0..4 * CASES {
        let mut rng = SimRng::new(0x1675 + case);
        let enq_ns = rng.gen_range(10_000_000);
        let sojourn_ns = rng.gen_range(260_000);
        let clk = HwClock::RES_4NS;
        let enq = Time::from_ns(enq_ns);
        let deq = enq + Time::from_ns(sojourn_ns);
        let measured = clk.measure(enq, deq);
        let err = (measured.as_ns() as i64 - sojourn_ns as i64).abs();
        assert!(
            err <= 4,
            "case {case}: error {err} ns for sojourn {sojourn_ns} ns"
        );
    }
}

/// Workload sampling stays within the CDF's support and the quantile
/// function is monotone.
#[test]
fn cdf_sample_and_quantile() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xCDF + case);
        let seed = rng.gen_range(1_000);
        let p1 = rng.next_f64();
        let p2 = rng.next_f64();
        for wl in Workload::ALL {
            let cdf = wl.cdf();
            let mut sample_rng = SimRng::new(seed);
            let s = cdf.sample(&mut sample_rng);
            let max = cdf.points().last().map(|p| p.0 as u64).unwrap_or(0);
            assert!(s >= 1 && s <= max, "case {case}: sample {s} out of [1,{max}]");
            let (lo, hi) = (p1.min(p2), p1.max(p2));
            assert!(
                cdf.quantile(lo) <= cdf.quantile(hi),
                "case {case}: quantile not monotone"
            );
        }
    }
}

/// WFQ never selects an empty queue and is work conserving under
/// arbitrary enqueue patterns.
#[test]
fn wfq_work_conserving() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x3F9 + case);
        let n = range(&mut rng, 1, 100) as usize;
        let mut queues = vec![PacketQueue::new(); 3];
        let mut sched = Wfq::equal(3);
        let mut now = Time::ZERO;
        for _ in 0..n {
            let q = rng.gen_range(3) as usize;
            let payload = range(&mut rng, 41, 3_000) as u32;
            let p = data_packet(payload);
            queues[q].push_back(p.clone());
            sched.on_enqueue(&queues, q, &p, now);
        }
        let mut served = 0;
        while let Some(q) = sched.select(&queues, now) {
            assert!(!queues[q].is_empty(), "case {case}: selected empty queue");
            let p = queues[q].pop_front().expect("non-empty by assertion above");
            now += Rate::from_gbps(1).tx_time(u64::from(p.size));
            sched.on_dequeue(&queues, q, &p, now).expect("tagged dequeue");
            served += 1;
            assert!(served <= n, "case {case}: served more than pushed");
        }
        assert_eq!(served, n, "case {case}: idled with backlog");
    }
}

/// DWRR, same property, with random quanta.
#[test]
fn dwrr_work_conserving() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xD399 + case);
        let nq = range(&mut rng, 2, 5) as usize;
        let quanta: Vec<u64> = (0..nq).map(|_| range(&mut rng, 100, 5_000)).collect();
        let n = range(&mut rng, 1, 100) as usize;
        let mut queues = vec![PacketQueue::new(); nq];
        let mut sched = Dwrr::new(quanta);
        let mut now = Time::ZERO;
        for _ in 0..n {
            let q = rng.gen_range(nq as u64) as usize;
            let payload = range(&mut rng, 41, 3_000) as u32;
            let p = data_packet(payload);
            queues[q].push_back(p.clone());
            sched.on_enqueue(&queues, q, &p, now);
        }
        let mut served = 0;
        while let Some(q) = sched.select(&queues, now) {
            assert!(!queues[q].is_empty(), "case {case}: selected empty queue");
            let p = queues[q].pop_front().expect("non-empty by assertion above");
            now += Rate::from_gbps(1).tx_time(u64::from(p.size));
            sched.on_dequeue(&queues, q, &p, now).expect("tagged dequeue");
            served += 1;
            assert!(served <= n, "case {case}: served more than pushed");
        }
        assert_eq!(served, n, "case {case}: idled with backlog");
    }
}

/// Percentile is bounded by min/max and monotone in p.
#[test]
fn percentile_bounds() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x9EC7 + case);
        let n = range(&mut rng, 1, 200) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 1e6)).collect();
        let p = rng.uniform(0.0, 100.0);
        let v = tcn_stats::percentile(&xs, p);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(v >= lo && v <= hi, "case {case}: p{p} out of [{lo},{hi}]");
        assert!(
            tcn_stats::percentile(&xs, 0.0) <= tcn_stats::percentile(&xs, 100.0),
            "case {case}: percentile not monotone"
        );
    }
}

/// The deterministic RNG's gen_range respects its bound for any seed
/// and any bound.
#[test]
fn rng_range_bounds() {
    for case in 0..4 * CASES {
        let mut meta = SimRng::new(0xB0B0 + case);
        let seed = meta.next_u64();
        let n = range(&mut meta, 1, 1_000_000);
        let mut r = SimRng::new(seed);
        for _ in 0..50 {
            assert!(r.gen_range(n) < n, "case {case}: bound {n} violated");
        }
    }
}

#[test]
fn packet_kind_is_exhaustively_modeled() {
    // A non-random sanity companion: the three packet kinds round-trip
    // through construction helpers.
    let d = Packet::data(FlowId(1), 0, 1, 100, 1000, 40);
    assert!(matches!(d.kind, PacketKind::Data { seq: 100, .. }));
    let a = Packet::ack(FlowId(1), 1, 0, 5, true, 40);
    assert!(matches!(a.kind, PacketKind::Ack { cum_ack: 5, ece: true }));
    let p = Packet::probe(FlowId(1), 0, 1, 9, false, 64);
    assert!(matches!(p.kind, PacketKind::Probe { probe_id: 9, reply: false }));
}
