//! The token-level lint engine: rule trait, registry plumbing, the
//! suppression ledger, and structured diagnostics.
//!
//! Responsibilities are split so each rule stays a pure function over
//! one file's tokens:
//!
//! * [`SourceFile`] lexes a file once and precomputes what every rule
//!   wants: the comment-free token view, `#[cfg(test)]` mod spans, and
//!   the `lint:allow(...)` escape sites found in comments.
//! * [`Rule`] is the table-driven interface: an id, a severity, a
//!   human summary, a path [`Scope`], a test-span policy, and `check`.
//! * [`run`] executes every rule over every in-scope file, then applies
//!   the escape-hatch protocol centrally: a justified
//!   `lint:allow(<rule>): <why>` on the offending line suppresses the
//!   diagnostic and marks the site *used*; a bare allow becomes a
//!   "needs justification" diagnostic; an allow that suppressed nothing
//!   anywhere becomes an `unused-allow` diagnostic — stale escapes rot
//!   into lies, so the engine deletes their license to exist.
//!
//! Diagnostics carry `file:line:col`, the rule id, a severity, and a
//! message, and render as text or as the JSON schema `xtask ci`'s lint
//! stage validates (see [`to_json`] / [`crate::jsonck`]).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lex::{lex, Token};

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// How a finding affects the exit code: `Deny` findings fail the lint
/// gate; `Warn` findings are printed (and serialized) but do not fail.
/// Every shipped rule currently denies — the variant exists so a rule
/// can be landed in observation mode before it starts gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails `cargo xtask lint` (and therefore `ci`).
    Deny,
    /// Reported but never fails the gate.
    Warn,
}

impl Severity {
    /// Lowercase name used in JSON output and the rule table.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One lint finding, printed as `file:line:col: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column (0 when the finding is file-scoped).
    pub col: usize,
    /// Rule identifier (also the name accepted by `lint:allow(...)`).
    pub rule: &'static str,
    /// Whether this finding fails the gate.
    pub severity: Severity,
    /// Human-oriented explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Source files
// ---------------------------------------------------------------------------

/// A `lint:allow(<rule>)` escape comment found in a source file.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// 1-based line the comment starts on (the line it suppresses).
    pub line: usize,
    /// The rule name inside the parentheses (not validated here).
    pub rule: String,
    /// True when a `: <justification>` of at least 10 chars follows.
    pub justified: bool,
}

/// One lexed source file plus the precomputed views rules share.
pub struct SourceFile {
    /// Repo-relative path (rules scope on this).
    pub path: PathBuf,
    /// Raw source text.
    pub raw: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Comment-free token stream (what pattern rules iterate).
    pub code: Vec<Token>,
    /// 1-based inclusive line ranges of `#[cfg(test)] mod … { … }`.
    pub test_spans: Vec<(usize, usize)>,
    /// Escape-hatch comments, in file order.
    pub allows: Vec<AllowSite>,
}

impl SourceFile {
    /// Lex `raw` and precompute the shared views.
    pub fn new(path: PathBuf, raw: String) -> Self {
        let tokens = lex(&raw);
        let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
        let test_spans = test_spans(&code);
        let allows = collect_allows(&tokens);
        SourceFile { path, raw, tokens, code, test_spans, allows }
    }

    /// True if `line` falls inside a `#[cfg(test)]` mod block.
    pub fn in_test_span(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// 1-based inclusive line ranges of `#[cfg(test)]`-gated `mod` blocks,
/// computed by brace-tracking the comment-free token stream.
fn test_spans(code: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let attr = code[i].is_punct("#")
            && code[i + 1].is_punct("[")
            && code[i + 2].is_ident("cfg")
            && code[i + 3].is_punct("(")
            && code[i + 4].is_ident("test")
            && code[i + 5].is_punct(")")
            && code[i + 6].is_punct("]");
        if !attr {
            i += 1;
            continue;
        }
        let start_line = code[i].line;
        // Skip further attributes and visibility to the `mod` keyword.
        let mut j = i + 7;
        loop {
            if j >= code.len() {
                break;
            }
            if code[j].is_punct("#") && code.get(j + 1).is_some_and(|t| t.is_punct("[")) {
                // Skip a balanced attribute group.
                let mut depth = 0i64;
                j += 1;
                while j < code.len() {
                    if code[j].is_punct("[") {
                        depth += 1;
                    } else if code[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                continue;
            }
            if code[j].is_ident("pub") {
                j += 1;
                // Skip a `(crate)` / `(super)` / `(in path)` restriction.
                if code.get(j).is_some_and(|t| t.is_punct("(")) {
                    let mut depth = 0i64;
                    while j < code.len() {
                        if code[j].is_punct("(") {
                            depth += 1;
                        } else if code[j].is_punct(")") {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                continue;
            }
            break;
        }
        if !code.get(j).is_some_and(|t| t.is_ident("mod")) {
            i += 1;
            continue;
        }
        // Find the opening brace (an external `mod x;` has none).
        while j < code.len() && !code[j].is_punct("{") && !code[j].is_punct(";") {
            j += 1;
        }
        if !code.get(j).is_some_and(|t| t.is_punct("{")) {
            i = j;
            continue;
        }
        let mut depth = 0i64;
        let mut end_line = code[j].line;
        while j < code.len() {
            if code[j].is_punct("{") {
                depth += 1;
            } else if code[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    end_line = code[j].line;
                    break;
                }
            }
            end_line = code[j].line;
            j += 1;
        }
        spans.push((start_line, end_line));
        i = j + 1;
    }
    spans
}

/// Scan comment tokens for `lint:allow(<rule>)` escapes. A justified
/// allow carries `: <why>` with at least 10 characters of prose.
///
/// Only a kebab-case rule name registers as an escape site: prose that
/// *talks about* the protocol (`lint:allow(<rule>)`, `lint:allow(...)`
/// in rule docs and messages) is not an escape.
fn collect_allows(tokens: &[Token]) -> Vec<AllowSite> {
    let mut out = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let mut rest = t.text.as_str();
        while let Some(at) = rest.find("lint:allow(") {
            rest = &rest[at + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            rest = &rest[close + 1..];
            if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
                continue;
            }
            let justification = rest.strip_prefix(':').map(str::trim).unwrap_or("");
            out.push(AllowSite {
                line: t.line,
                rule,
                justified: justification.len() >= 10,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Which files a rule runs on: a predicate over the repo-relative path
/// plus the human description printed by `--list` and the doc tables.
#[derive(Clone, Copy)]
pub struct Scope {
    /// Short description for the rule table (e.g. "library `src/` trees").
    pub desc: &'static str,
    /// Path predicate (repo-relative paths, `/`-separated components).
    pub applies: fn(&Path) -> bool,
}

/// A lint rule on the token engine.
///
/// Implementations must be pure functions of the [`SourceFile`]: no
/// filesystem access, no cross-file state. Cross-file concerns
/// (suppression bookkeeping, `unused-allow`) live in [`run`].
pub trait Rule {
    /// Stable identifier — the `--rule` argument and `lint:allow` name.
    fn id(&self) -> &'static str;
    /// Whether findings fail the gate.
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    /// One-line description for `--list` and the doc tables.
    fn summary(&self) -> &'static str;
    /// Which files the rule runs on.
    fn scope(&self) -> Scope;
    /// True when `#[cfg(test)]` mod blocks are exempt.
    fn exempts_tests(&self) -> bool {
        false
    }
    /// Append findings for one file. Implementations need not handle
    /// test spans (use [`SourceFile::in_test_span`] when
    /// [`Rule::exempts_tests`]), `lint:allow` escapes, or severity —
    /// the engine applies those.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// The rule id reserved for the engine-level stale-escape check; see
/// [`run`] and `rules::UnusedAllow`.
pub const UNUSED_ALLOW: &str = "unused-allow";

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Run `rules` over `files`, apply the suppression protocol, and return
/// diagnostics sorted by `(file, line, col, rule)`.
///
/// All rules always execute (allow-site usage is only meaningful
/// against the full rule set); use [`filter_rules`] afterwards to
/// narrow *output* to selected rules.
pub fn run(files: &[SourceFile], rules: &[Box<dyn Rule>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // (file index, line, rule) sites consumed by a suppression.
    let mut used: Vec<(usize, usize, String)> = Vec::new();

    for rule in rules {
        for (fi, file) in files.iter().enumerate() {
            if !(rule.scope().applies)(&file.path) {
                continue;
            }
            let mut raw = Vec::new();
            rule.check(file, &mut raw);
            if rule.exempts_tests() {
                raw.retain(|d| !file.in_test_span(d.line));
            }
            // One finding per (line, rule): the first by column wins —
            // a second hit on the same line adds noise, not signal.
            raw.sort_by_key(|d| (d.line, d.col));
            raw.dedup_by_key(|d| d.line);
            for mut d in raw {
                d.severity = rule.severity();
                match file
                    .allows
                    .iter()
                    .find(|a| a.line == d.line && a.rule == rule.id())
                {
                    Some(a) => {
                        used.push((fi, d.line, rule.id().to_string()));
                        if !a.justified {
                            d.message = format!(
                                "lint:allow({}) needs a `: <justification>` (>= 10 chars)",
                                rule.id()
                            );
                            out.push(d);
                        }
                    }
                    None => out.push(d),
                }
            }
        }
    }

    // Stale escapes: an allow that suppressed nothing is itself a
    // violation — it documents a hazard that no longer exists (or
    // never did) and would silently license a future one.
    let known: Vec<&str> = rules.iter().map(|r| r.id()).collect();
    for (fi, file) in files.iter().enumerate() {
        for a in &file.allows {
            if a.rule == UNUSED_ALLOW {
                continue; // allowing the allow-checker is not a thing
            }
            let consumed = used
                .iter()
                .any(|(ufi, line, rule)| *ufi == fi && *line == a.line && *rule == a.rule);
            if consumed {
                continue;
            }
            let message = if known.contains(&a.rule.as_str()) {
                format!(
                    "lint:allow({}) suppresses no diagnostic on this line — delete the stale escape",
                    a.rule
                )
            } else {
                format!(
                    "lint:allow({}) names an unknown rule (see `cargo xtask lint --list`)",
                    a.rule
                )
            };
            out.push(Diagnostic {
                file: file.path.clone(),
                line: a.line,
                col: 0,
                rule: UNUSED_ALLOW,
                severity: Severity::Deny,
                message,
            });
        }
    }

    out.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
            .then(a.rule.cmp(b.rule))
    });
    out
}

/// Keep only diagnostics for the named rules (used by `--rule`).
pub fn filter_rules(diags: Vec<Diagnostic>, only: &[String]) -> Vec<Diagnostic> {
    if only.is_empty() {
        return diags;
    }
    diags
        .into_iter()
        .filter(|d| only.iter().any(|r| r == d.rule))
        .collect()
}

// ---------------------------------------------------------------------------
// Repo walk
// ---------------------------------------------------------------------------

/// All `.rs` files under `dir`, recursively, sorted for deterministic
/// output. Skips `target/`, hidden directories, and `fixtures/` trees
/// (the lint test corpus contains planted violations by design).
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name != "target" && name != "fixtures" && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Load every repo `.rs` file as a [`SourceFile`] with repo-relative
/// paths (unreadable files are skipped — the build would fail anyway).
pub fn load_repo(repo: &Path) -> Vec<SourceFile> {
    rust_files(repo)
        .into_iter()
        .filter_map(|f| {
            let raw = fs::read_to_string(&f).ok()?;
            let rel = f.strip_prefix(repo).unwrap_or(&f).to_path_buf();
            Some(SourceFile::new(rel, raw))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------------

/// Serialize diagnostics as the versioned JSON document downstream
/// tooling parses (schema checked by [`crate::jsonck::validate_lint_json`]):
///
/// ```json
/// {"version":1,"count":N,"diagnostics":[
///   {"file":"…","line":1,"col":2,"rule":"…","severity":"deny","message":"…"}
/// ]}
/// ```
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\"version\":1,\"count\":");
    s.push_str(&diags.len().to_string());
    s.push_str(",\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"file\":");
        json_string(&mut s, &d.file.display().to_string());
        s.push_str(",\"line\":");
        s.push_str(&d.line.to_string());
        s.push_str(",\"col\":");
        s.push_str(&d.col.to_string());
        s.push_str(",\"rule\":");
        json_string(&mut s, d.rule);
        s.push_str(",\"severity\":");
        json_string(&mut s, d.severity.as_str());
        s.push_str(",\"message\":");
        json_string(&mut s, &d.message);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Append `v` as a JSON string literal (escaping quotes, backslashes,
/// and control characters).
fn json_string(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NeedleRule {
        id: &'static str,
        needle: &'static str,
        severity: Severity,
        exempt_tests: bool,
    }

    impl Rule for NeedleRule {
        fn id(&self) -> &'static str {
            self.id
        }
        fn severity(&self) -> Severity {
            self.severity
        }
        fn summary(&self) -> &'static str {
            "test rule"
        }
        fn scope(&self) -> Scope {
            Scope { desc: "everywhere", applies: |_| true }
        }
        fn exempts_tests(&self) -> bool {
            self.exempt_tests
        }
        fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
            for t in &file.code {
                if t.is_ident(self.needle) {
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        rule: self.id,
                        severity: Severity::Deny,
                        message: format!("found {}", self.needle),
                    });
                }
            }
        }
    }

    fn needle_rule(id: &'static str, needle: &'static str) -> Box<dyn Rule> {
        Box::new(NeedleRule { id, needle, severity: Severity::Deny, exempt_tests: false })
    }

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from(path), src.to_string())
    }

    #[test]
    fn justified_allow_suppresses_and_is_used() {
        let f = file(
            "a.rs",
            "badword(); // lint:allow(rule-x): this occurrence is provably fine here\n",
        );
        let d = run(&[f], &[needle_rule("rule-x", "badword")]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn bare_allow_is_flagged_for_justification() {
        let f = file("a.rs", "badword(); // lint:allow(rule-x)\n");
        let d = run(&[f], &[needle_rule("rule-x", "badword")]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("justification"), "{}", d[0].message);
    }

    #[test]
    fn unused_allow_is_flagged() {
        let f = file(
            "a.rs",
            "fine(); // lint:allow(rule-x): nothing here actually trips the rule\n",
        );
        let d = run(&[f], &[needle_rule("rule-x", "badword")]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, UNUSED_ALLOW);
        assert!(d[0].message.contains("stale"), "{}", d[0].message);
    }

    #[test]
    fn unknown_rule_allow_is_flagged() {
        let f = file("a.rs", "x(); // lint:allow(no-such-rule): pointless but confident\n");
        let d = run(&[f], &[needle_rule("rule-x", "badword")]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, UNUSED_ALLOW);
        assert!(d[0].message.contains("unknown rule"), "{}", d[0].message);
    }

    #[test]
    fn one_diagnostic_per_line_per_rule() {
        let f = file("a.rs", "badword(); badword(); badword();\n");
        let d = run(&[f], &[needle_rule("rule-x", "badword")]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn test_span_exemption_is_per_rule() {
        let src = "fn f() { badword(); }\n#[cfg(test)]\nmod tests {\n    fn t() { badword(); }\n}\n";
        let strict = run(&[file("a.rs", src)], &[needle_rule("rule-x", "badword")]);
        assert_eq!(strict.len(), 2, "{strict:?}");
        let lenient = run(
            &[file("a.rs", src)],
            &[Box::new(NeedleRule {
                id: "rule-x",
                needle: "badword",
                severity: Severity::Deny,
                exempt_tests: true,
            }) as Box<dyn Rule>],
        );
        assert_eq!(lenient.len(), 1, "{lenient:?}");
        assert_eq!(lenient[0].line, 1);
    }

    #[test]
    fn test_spans_via_tokens() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() {}\n}\nfn g() {}\n";
        let f = file("a.rs", src);
        assert_eq!(f.test_spans, vec![(3, 7)]);
        assert!(f.in_test_span(6));
        assert!(!f.in_test_span(8));
    }

    #[test]
    fn restricted_visibility_test_mod_is_spanned() {
        let src = "fn f() {}\n#[cfg(test)]\npub(crate) mod test_util {\n    fn t() {}\n}\n";
        let f = file("a.rs", src);
        assert_eq!(f.test_spans, vec![(2, 5)]);
    }

    #[test]
    fn allow_placeholders_in_docs_are_not_escape_sites() {
        let src = "/// append `lint:allow(<rule>): <why>` or `lint:allow(...)`\nfn f() {}\n";
        let f = file("a.rs", src);
        assert!(f.allows.is_empty(), "{:?}", f.allows);
    }

    #[test]
    fn braces_in_strings_do_not_skew_test_spans() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}{\";\n    fn t() {}\n}\nfn g() {}\n";
        let f = file("a.rs", src);
        assert_eq!(f.test_spans, vec![(1, 5)]);
    }

    #[test]
    fn warn_severity_is_stamped() {
        let f = file("a.rs", "badword();\n");
        let d = run(
            &[f],
            &[Box::new(NeedleRule {
                id: "rule-w",
                needle: "badword",
                severity: Severity::Warn,
                exempt_tests: false,
            }) as Box<dyn Rule>],
        );
        assert_eq!(d[0].severity, Severity::Warn);
    }

    #[test]
    fn filter_rules_narrows_output() {
        let f = file("a.rs", "alpha(); beta();\n");
        let d = run(
            &[f],
            &[needle_rule("rule-a", "alpha"), needle_rule("rule-b", "beta")],
        );
        assert_eq!(d.len(), 2);
        let only = filter_rules(d, &["rule-b".to_string()]);
        assert_eq!(only.len(), 1);
        assert_eq!(only[0].rule, "rule-b");
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = vec![Diagnostic {
            file: PathBuf::from("a.rs"),
            line: 3,
            col: 7,
            rule: "rule-x",
            severity: Severity::Deny,
            message: "say \"hi\"\\\n".into(),
        }];
        let j = to_json(&d);
        assert!(j.starts_with("{\"version\":1,\"count\":1,"), "{j}");
        assert!(j.contains("\"say \\\"hi\\\"\\\\\\n\""), "{j}");
        assert!(crate::jsonck::validate_lint_json(&j).is_ok());
        assert!(crate::jsonck::validate_lint_json(&to_json(&[])).is_ok());
    }

    #[test]
    fn diagnostic_formats_with_col() {
        let d = Diagnostic {
            file: PathBuf::from("crates/core/src/x.rs"),
            line: 7,
            col: 12,
            rule: "no-unwrap",
            severity: Severity::Deny,
            message: "msg".into(),
        };
        assert_eq!(d.to_string(), "crates/core/src/x.rs:7:12: [no-unwrap] msg");
    }
}
