//! A minimal JSON parser used to sanity-check the lint engine's
//! `--format json` output before downstream tooling sees it.
//!
//! `xtask` stays dependency-free, so this is a ~hundred-line
//! recursive-descent parser over the grammar we emit (objects, arrays,
//! strings with escapes, integers, bools, null) plus a schema check for
//! the lint document: `{"version":1,"count":N,"diagnostics":[…]}` where
//! every diagnostic carries `file`/`line`/`col`/`rule`/`severity`/
//! `message` of the right types and `count` equals the array length.
//! The `ci` lint stage runs [`validate_lint_json`] on the exact bytes
//! it prints, so a malformed document fails the gate rather than some
//! consumer's parser at 2 a.m.

/// A parsed JSON value (numbers are kept as `f64`; the lint schema only
/// uses non-negative integers, validated separately).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number literal.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as (key, value) pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document, rejecting trailing garbage.
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut i = 0;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && b[*i].is_ascii_whitespace() {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, i);
    if b.get(*i) == Some(&c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {i}", c as char, i = *i))
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut pairs = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, i);
                let key = match parse_value(b, i)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key is not a string at offset {i}", i = *i)),
                };
                expect(b, i, b':')?;
                let val = parse_value(b, i)?;
                pairs.push((key, val));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {i}", i = *i)),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {i}", i = *i)),
                }
            }
        }
        Some(b'"') => parse_string(b, i).map(Json::Str),
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            *i += 1;
            while *i < b.len()
                && (b[*i].is_ascii_digit()
                    || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
        _ => Err(format!("unexpected byte at offset {i}", i = *i)),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*i), Some(&b'"'));
    *i += 1;
    let mut out = Vec::new();
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {i}", i = *i))?;
                        let c = char::from_u32(hex).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at offset {i}", i = *i)),
                }
                *i += 1;
            }
            c => {
                out.push(c);
                *i += 1;
            }
        }
    }
    Err("unterminated string".into())
}

/// Validate a lint `--format json` document against the schema the
/// engine promises (see [`crate::engine::to_json`]).
pub fn validate_lint_json(src: &str) -> Result<(), String> {
    let doc = parse(src)?;
    let version = doc.get("version").ok_or("missing `version`")?;
    if *version != Json::Num(1.0) {
        return Err(format!("unsupported version {version:?}"));
    }
    let count = match doc.get("count") {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as usize,
        other => return Err(format!("bad `count`: {other:?}")),
    };
    let diags = match doc.get("diagnostics") {
        Some(Json::Arr(items)) => items,
        other => return Err(format!("bad `diagnostics`: {other:?}")),
    };
    if diags.len() != count {
        return Err(format!(
            "`count` is {count} but `diagnostics` has {} entries",
            diags.len()
        ));
    }
    for (idx, d) in diags.iter().enumerate() {
        let str_field = |k: &str| match d.get(k) {
            Some(Json::Str(s)) if !s.is_empty() => Ok(s.clone()),
            other => Err(format!("diagnostic {idx}: bad `{k}`: {other:?}")),
        };
        let num_field = |k: &str| match d.get(k) {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            other => Err(format!("diagnostic {idx}: bad `{k}`: {other:?}")),
        };
        str_field("file")?;
        num_field("line")?;
        num_field("col")?;
        str_field("rule")?;
        str_field("message")?;
        let sev = str_field("severity")?;
        if sev != "deny" && sev != "warn" {
            return Err(format!("diagnostic {idx}: bad severity `{sev}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":true,"e":null,"f":-1.5e2}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("f"), Some(&Json::Num(-150.0)));
        match v.get("a") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\ndA".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\":}", "{\"a\":1} extra", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn schema_accepts_valid_and_rejects_drift() {
        let ok = r#"{"version":1,"count":1,"diagnostics":[{"file":"a.rs","line":1,"col":2,"rule":"r","severity":"deny","message":"m"}]}"#;
        assert!(validate_lint_json(ok).is_ok());
        let wrong_count = ok.replace("\"count\":1", "\"count\":2");
        assert!(validate_lint_json(&wrong_count).is_err());
        let bad_sev = ok.replace("\"deny\"", "\"fatal\"");
        assert!(validate_lint_json(&bad_sev).is_err());
        let missing = ok.replace("\"rule\":\"r\",", "");
        assert!(validate_lint_json(&missing).is_err());
        let bad_version = ok.replace("\"version\":1", "\"version\":2");
        assert!(validate_lint_json(&bad_version).is_err());
    }
}
