//! The retired substring lint engine, kept verbatim as the
//! **differential oracle** for the token engine that replaced it.
//!
//! Every rule here scans a comment/string-stripped *code view* of each
//! file for needle substrings. The token engine
//! ([`crate::engine`] + [`crate::rules`]) reimplements all nine of
//! these rules over a real token stream; the self-test suite
//! (`xtask/tests/selftest.rs`) runs both engines over the live corpus
//! and over every fixture and asserts they report the same
//! `(file, line, rule)` findings. When the two engines disagree, one of
//! them is wrong — that is the whole value of keeping this module.
//!
//! Shared tables ([`NO_UNWRAP_CRATES`], the sanctuary lists) live in
//! [`crate::rules`] so the oracle and the live engine cannot drift on
//! *scope*; only the matching machinery is duplicated, deliberately.
//!
//! Do not add rules here: new rules are token-engine-only.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::engine::rust_files;
pub use crate::rules::{
    NO_UNWRAP_CRATES, PANIC_SANCTUARIES, PRINTLN_SANCTUARIES, WALLCLOCK_SANCTUARIES,
};

/// The one module allowed to do float arithmetic on raw tick counts
/// (the substring era's name for [`crate::rules::TIME_SANCTUARY`]).
pub const FLOAT_TIME_SANCTUARY: &str = crate::rules::TIME_SANCTUARY;

/// One lint finding, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (also the name accepted by `lint:allow(...)`).
    pub rule: &'static str,
    /// Human-oriented explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Source transforms
// ---------------------------------------------------------------------------

/// Replace every comment and string/char-literal byte with a space,
/// preserving newlines (and therefore line numbers and byte offsets).
///
/// Handles line comments (incl. `///` docs), nested block comments,
/// ordinary strings with escapes, raw strings (`r"…"`, `r#"…"#`, …),
/// char literals, and distinguishes lifetimes (`'a`) from char literals
/// (`'a'`, `'\n'`).
pub fn code_view(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;

    // Copy `n` source bytes verbatim.
    macro_rules! keep {
        ($n:expr) => {{
            for k in 0..$n {
                out.push(b[i + k]);
            }
            i += $n;
        }};
    }
    // Blank `n` source bytes (newlines survive).
    macro_rules! blank {
        ($n:expr) => {{
            for k in 0..$n {
                out.push(if b[i + k] == b'\n' { b'\n' } else { b' ' });
            }
            i += $n;
        }};
    }

    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment (incl. doc comments): blank to end of line.
                let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
                blank!(end - i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let mut depth = 0usize;
                let mut j = i;
                while j < b.len() {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        j += 1;
                    }
                }
                blank!(j - i);
            }
            b'r' if raw_string_hashes(b, i).is_some() => {
                // Raw string r"…" / r#"…"# — no escapes; ends at "#…# with
                // the same number of hashes.
                let hashes = raw_string_hashes(b, i).unwrap_or(0);
                keep!(1 + hashes + 1); // r, hashes, opening quote
                let closer = close_raw(b, i, hashes);
                blank!(closer - i);
                if i < b.len() {
                    keep!(1 + hashes); // closing quote + hashes
                }
            }
            b'"' => {
                keep!(1);
                let mut j = i;
                while j < b.len() {
                    match b[j] {
                        b'\\' => j += 2,
                        b'"' => break,
                        _ => j += 1,
                    }
                }
                blank!(j.min(b.len()) - i);
                if i < b.len() {
                    keep!(1);
                }
            }
            b'\'' => {
                // Lifetime or char literal?
                if is_char_literal(b, i) {
                    keep!(1);
                    let mut j = i;
                    while j < b.len() {
                        match b[j] {
                            b'\\' => j += 2,
                            b'\'' => break,
                            _ => j += 1,
                        }
                    }
                    blank!(j.min(b.len()) - i);
                    if i < b.len() {
                        keep!(1);
                    }
                } else {
                    keep!(1);
                }
            }
            _ => keep!(1),
        }
    }
    // blank! preserved newlines byte-for-byte, so this is valid UTF-8 as
    // long as the input was (multibyte chars only ever appear inside the
    // kept spans or get blanked whole).
    String::from_utf8_lossy(&out).into_owned()
}

/// If `b[i]` starts a raw string literal (`r"`, `r#"`, `br"`, …),
/// returns the number of `#`s; otherwise `None`. We only check plain
/// `r…` — a preceding identifier byte means `r` is part of a name.
fn raw_string_hashes(b: &[u8], i: usize) -> Option<usize> {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return None;
    }
    let mut j = i + 1;
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (j < b.len() && b[j] == b'"').then_some(hashes)
}

/// Byte offset of the closing quote of a raw string whose contents start
/// at `start` (the position of `r`). Returns the index of the `"` in the
/// closing `"##…`.
fn close_raw(b: &[u8], start: usize, hashes: usize) -> usize {
    let mut j = start;
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut h = 0;
            while k < b.len() && b[k] == b'#' && h < hashes {
                h += 1;
                k += 1;
            }
            if h == hashes && j > start {
                return j;
            }
        }
        j += 1;
    }
    b.len()
}

/// True if the `'` at `b[i]` opens a char literal rather than a
/// lifetime. `'\…'` is always a char; `'x'` is a char; `'abc` is a
/// lifetime.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) if c != b'\'' => b.get(i + 2) == Some(&b'\''),
        _ => false,
    }
}

/// 1-based line ranges (inclusive) of `#[cfg(test)]`-gated `mod` blocks,
/// computed on the *code view* so braces in comments/strings don't skew
/// the count.
pub fn test_spans(view: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let lines: Vec<&str> = view.lines().collect();
    let mut l = 0;
    while l < lines.len() {
        if lines[l].trim_start().starts_with("#[cfg(test)]") {
            // Find the mod declaration within the next few lines (other
            // attributes may intervene) and brace-track from its `{`.
            let mut m = l + 1;
            while m < lines.len() && !lines[m].contains("mod ") {
                if !lines[m].trim_start().starts_with("#[") && !lines[m].trim().is_empty() {
                    break;
                }
                m += 1;
            }
            if m < lines.len() && lines[m].contains("mod ") {
                let mut depth = 0i64;
                let mut opened = false;
                let mut end = m;
                'outer: for (k, line) in lines.iter().enumerate().skip(m) {
                    for ch in line.chars() {
                        match ch {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => {
                                depth -= 1;
                                if opened && depth == 0 {
                                    end = k;
                                    break 'outer;
                                }
                            }
                            _ => {}
                        }
                    }
                    end = k;
                }
                spans.push((l + 1, end + 1));
                l = end + 1;
                continue;
            }
        }
        l += 1;
    }
    spans
}

fn in_spans(line: usize, spans: &[(usize, usize)]) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Scan the *raw* source line for a `lint:allow(<rule>)` escape. Returns
/// `Some(true)` for a justified allow, `Some(false)` for a bare one
/// (missing or trivial justification — itself reported by the caller).
pub fn allow_on_line(raw_line: &str, rule: &str) -> Option<bool> {
    let needle = format!("lint:allow({rule})");
    let at = raw_line.find(&needle)?;
    let rest = &raw_line[at + needle.len()..];
    let justification = rest.strip_prefix(':').map(str::trim).unwrap_or("");
    Some(justification.len() >= 10)
}

// ---------------------------------------------------------------------------
// Rules (each takes (path, raw source) so they are unit-testable without
// touching the filesystem)
// ---------------------------------------------------------------------------

/// Report `needle` occurrences in production lines of `view`, honouring
/// test spans and `lint:allow` escapes on the raw source.
fn scan_needles(
    path: &Path,
    raw: &str,
    view: &str,
    spans: &[(usize, usize)],
    rule: &'static str,
    needles: &[&str],
    message: impl Fn(&str) -> String,
    out: &mut Vec<Diagnostic>,
) {
    let raw_lines: Vec<&str> = raw.lines().collect();
    for (idx, line) in view.lines().enumerate() {
        let lineno = idx + 1;
        if in_spans(lineno, spans) {
            continue;
        }
        for needle in needles {
            if !line.contains(needle) {
                continue;
            }
            match allow_on_line(raw_lines.get(idx).copied().unwrap_or(""), rule) {
                Some(true) => {}
                Some(false) => out.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule,
                    message: format!(
                        "lint:allow({rule}) needs a `: <justification>` (>= 10 chars)"
                    ),
                }),
                None => out.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule,
                    message: message(needle),
                }),
            }
            break; // one diagnostic per line is enough
        }
    }
}

/// `no-unwrap`: no `.unwrap()` / `.expect(` in library production code.
pub fn check_no_unwrap(path: &Path, raw: &str) -> Vec<Diagnostic> {
    let view = code_view(raw);
    let spans = test_spans(&view);
    let mut out = Vec::new();
    scan_needles(
        path,
        raw,
        &view,
        &spans,
        "no-unwrap",
        &[".unwrap()", ".expect("],
        |n| {
            format!(
                "`{n}…` in library code: return an error, restructure with \
                 let-else/match, or append `lint:allow(no-unwrap): <why>`"
            )
        },
        &mut out,
    );
    out
}

/// `no-panic-in-lib`: no `panic!` in library production code — a panic
/// in a library crate aborts whichever sweep cell was executing it,
/// turning one bad configuration into a dead suite, while a typed
/// [`TcnError`] keeps the failure attributable and quarantinable. When
/// `include_unwrap` is set (crates outside [`NO_UNWRAP_CRATES`], whose
/// unwraps the `no-unwrap` rule does not already police) the rule also
/// catches `.unwrap()` / `.expect(`.
pub fn check_no_panic(path: &Path, raw: &str, include_unwrap: bool) -> Vec<Diagnostic> {
    let view = code_view(raw);
    let spans = test_spans(&view);
    let mut out = Vec::new();
    let needles: &[&str] = if include_unwrap {
        &["panic!", ".unwrap()", ".expect("]
    } else {
        &["panic!"]
    };
    scan_needles(
        path,
        raw,
        &view,
        &spans,
        "no-panic-in-lib",
        needles,
        |n| {
            format!(
                "`{n}…` in library code can abort a whole sweep: return a \
                 TcnError (the cell runner quarantines it), or append \
                 `lint:allow(no-panic-in-lib): <why>`"
            )
        },
        &mut out,
    );
    out
}

/// `no-float-time`: raw tick counts must not be cast to floats outside
/// the `Time` module — use `as_secs_f64()` / `as_us_f64()` which carry
/// their unit in the name.
pub fn check_no_float_time(path: &Path, raw: &str) -> Vec<Diagnostic> {
    let view = code_view(raw);
    let spans = test_spans(&view);
    let mut out = Vec::new();
    scan_needles(
        path,
        raw,
        &view,
        &spans,
        "no-float-time",
        &[
            ".as_ps() as f64",
            ".as_ns() as f64",
            ".as_us() as f64",
            ".as_ms() as f64",
            ".as_ps() as f32",
            ".as_ns() as f32",
            ".as_us() as f32",
            ".as_ms() as f32",
        ],
        |n| {
            format!(
                "`{n}` casts a raw tick count to float; use Time::as_secs_f64()/\
                 as_us_f64() (only sim/src/time.rs may do raw conversions)"
            )
        },
        &mut out,
    );
    out
}

/// `no-wallclock`: host-clock reads outside [`WALLCLOCK_SANCTUARIES`].
/// Applies to test code too — tests must be as deterministic as the
/// simulator they check.
pub fn check_no_wallclock(path: &Path, raw: &str) -> Vec<Diagnostic> {
    let view = code_view(raw);
    let mut out = Vec::new();
    scan_needles(
        path,
        raw,
        &view,
        &[], // no test-span exemption
        "no-wallclock",
        &["std::time::Instant", "Instant::now", "SystemTime"],
        |n| {
            format!(
                "`{n}` reads the host clock; simulation code runs on virtual \
                 Time only (wall-clock timing belongs in crates/bench or xtask)"
            )
        },
        &mut out,
    );
    out
}

/// `no-println-in-lib`: no `println!` / `eprintln!` in library
/// production code. A library that prints hardcodes one consumer and
/// one format; this repo's answer to "I want to see what the simulator
/// did" is a [`tcn-telemetry`] sink, which callers can point at memory,
/// a JSONL trace, or a summary report. Tests may print (cargo captures
/// it); binaries are exempt by scope.
pub fn check_no_println(path: &Path, raw: &str) -> Vec<Diagnostic> {
    let view = code_view(raw);
    let spans = test_spans(&view);
    let mut out = Vec::new();
    scan_needles(
        path,
        raw,
        &view,
        &spans,
        "no-println-in-lib",
        &["println!", "eprintln!"],
        |n| {
            format!(
                "`{n}` in library code: emit a tcn-telemetry event (or return \
                 the data) instead of printing, or append \
                 `lint:allow(no-println-in-lib): <why>`"
            )
        },
        &mut out,
    );
    out
}

/// `no-unsafe`: the `unsafe` keyword anywhere (even in tests — a
/// simulator has no business with it).
pub fn check_no_unsafe(path: &Path, raw: &str) -> Vec<Diagnostic> {
    let view = code_view(raw);
    let mut out = Vec::new();
    for (idx, line) in view.lines().enumerate() {
        // Word-boundary check without regex: find "unsafe" not glued to
        // identifier chars ("unsafe_code" in the forbid attr is fine).
        let mut start = 0;
        while let Some(pos) = line[start..].find("unsafe") {
            let at = start + pos;
            let before_ok = at == 0
                || !line.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && line.as_bytes()[at - 1] != b'_';
            let after = at + "unsafe".len();
            let after_ok = after >= line.len()
                || !line.as_bytes()[after].is_ascii_alphanumeric()
                    && line.as_bytes()[after] != b'_';
            if before_ok && after_ok {
                out.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: idx + 1,
                    rule: "no-unsafe",
                    message: "`unsafe` is banned everywhere in this repo".into(),
                });
                break;
            }
            start = after;
        }
    }
    out
}

/// `forbid-unsafe-attr`: a crate root must carry `#![forbid(unsafe_code)]`.
pub fn check_forbid_attr(path: &Path, raw: &str) -> Vec<Diagnostic> {
    if raw.contains("#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Diagnostic {
            file: path.to_path_buf(),
            line: 1,
            rule: "forbid-unsafe-attr",
            message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
        }]
    }
}

/// `aqm-doc-cite`: every type with an `impl Aqm for X` in this file must
/// have a `pub struct X` whose doc comment cites a paper section (`§`).
/// The struct is looked up in the same file — all AQMs in this repo are
/// defined beside their impl.
pub fn check_aqm_doc_cite(path: &Path, raw: &str) -> Vec<Diagnostic> {
    let view = code_view(raw);
    let spans = test_spans(&view);
    let raw_lines: Vec<&str> = raw.lines().collect();
    let view_lines: Vec<&str> = view.lines().collect();
    let mut out = Vec::new();

    for (idx, line) in view_lines.iter().enumerate() {
        let lineno = idx + 1;
        if in_spans(lineno, &spans) {
            continue;
        }
        let Some(pos) = line.find("impl Aqm for ") else {
            continue;
        };
        let ty: String = line[pos + "impl Aqm for ".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ty.is_empty() {
            continue;
        }
        // Find `pub struct <ty>` (or `struct <ty>`) in the same file.
        let decl = format!("struct {ty}");
        let Some(struct_idx) = view_lines.iter().position(|l| {
            l.contains(&decl)
                && l[l.find(&decl).unwrap_or(0) + decl.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_')
        }) else {
            continue; // type defined elsewhere; out of this rule's reach
        };
        // Walk upward over attributes and `///` lines collecting the doc.
        let mut cited = false;
        let mut k = struct_idx;
        while k > 0 {
            k -= 1;
            let l = raw_lines.get(k).copied().unwrap_or("").trim_start();
            if l.starts_with("///") {
                if l.contains('§') {
                    cited = true;
                }
            } else if l.starts_with("#[") || l.starts_with("#![") {
                continue;
            } else {
                break;
            }
        }
        if !cited {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: struct_idx + 1,
                rule: "aqm-doc-cite",
                message: format!(
                    "`{ty}` implements Aqm but its doc comment never cites a \
                     paper section (add a `§n.m` reference)"
                ),
            });
        }
    }
    out
}

/// `fault-kind-doc`: every variant of the `FaultKind` enum must carry a
/// doc comment naming the real-world failure mode it models (at least
/// 10 characters of prose). Fault taxonomies rot fastest: an undocumented
/// variant forces every reader back to the injection site to learn what
/// a counter means.
pub fn check_fault_kind_doc(path: &Path, raw: &str) -> Vec<Diagnostic> {
    let view = code_view(raw);
    let raw_lines: Vec<&str> = raw.lines().collect();
    let view_lines: Vec<&str> = view.lines().collect();
    let mut out = Vec::new();

    let Some(start) = view_lines.iter().position(|l| {
        l.find("enum FaultKind").is_some_and(|at| {
            l[at + "enum FaultKind".len()..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_')
        })
    }) else {
        return out;
    };

    // Brace-track to the end of the enum body.
    let mut depth = 0i64;
    let mut opened = false;
    let mut end = start;
    'outer: for (k, line) in view_lines.iter().enumerate().skip(start) {
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        end = k;
                        break 'outer;
                    }
                }
                _ => {}
            }
        }
        end = k;
    }

    for idx in start + 1..end {
        let trimmed = view_lines[idx].trim_start();
        // A variant line starts with an uppercase identifier at brace
        // depth 1; attributes, docs (blanked in the view) and field
        // lines of brace-variants don't.
        let is_variant = trimmed
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
            && !trimmed.starts_with("Self");
        if !is_variant || !variant_depth_one(&view_lines[start..idx]) {
            continue;
        }
        let name: String = trimmed
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // Walk upward over attributes to the doc comment.
        let mut documented = false;
        let mut k = idx;
        while k > start + 1 {
            k -= 1;
            let l = raw_lines.get(k).copied().unwrap_or("").trim_start();
            if let Some(text) = l.strip_prefix("///") {
                if text.trim().len() >= 10 {
                    documented = true;
                }
                break;
            } else if l.starts_with("#[") {
                continue;
            } else {
                break;
            }
        }
        if !documented {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: idx + 1,
                rule: "fault-kind-doc",
                message: format!(
                    "`FaultKind::{name}` has no doc comment naming the \
                     real-world failure mode it models"
                ),
            });
        }
    }
    out
}

/// True when the line after `prefix` sits at brace depth 1 (directly in
/// the enum body, not inside a struct-variant's field block).
fn variant_depth_one(prefix: &[&str]) -> bool {
    let mut depth = 0i64;
    for line in prefix {
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    depth == 1
}

// ---------------------------------------------------------------------------
// Repo walk + driver
// ---------------------------------------------------------------------------

/// Crate roots: `src/lib.rs` or `src/main.rs` of every workspace member.
fn crate_roots(repo: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    for candidate in ["src/lib.rs", "src/main.rs", "xtask/src/lib.rs", "xtask/src/main.rs"] {
        let p = repo.join(candidate);
        if p.is_file() {
            roots.push(p);
        }
    }
    if let Ok(entries) = fs::read_dir(repo.join("crates")) {
        for entry in entries.flatten() {
            for leaf in ["src/lib.rs", "src/main.rs"] {
                let p = entry.path().join(leaf);
                if p.is_file() {
                    roots.push(p);
                }
            }
        }
    }
    roots.sort();
    roots
}

fn rel(repo: &Path, p: &Path) -> PathBuf {
    p.strip_prefix(repo).unwrap_or(p).to_path_buf()
}

/// Run every rule over the repository rooted at `repo`. Returns all
/// diagnostics, sorted by (file, line).
pub fn lint_repo(repo: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // no-unwrap over the library crates' src trees.
    for krate in NO_UNWRAP_CRATES {
        for f in rust_files(&repo.join(krate).join("src")) {
            if let Ok(raw) = fs::read_to_string(&f) {
                out.extend(check_no_unwrap(&rel(repo, &f), &raw));
            }
        }
    }

    // no-float-time + no-unsafe over every .rs file in the repo
    // (src, tests, benches, xtask — everything we own).
    for f in rust_files(repo) {
        let Ok(raw) = fs::read_to_string(&f) else {
            continue;
        };
        let r = rel(repo, &f);
        if r != Path::new(FLOAT_TIME_SANCTUARY) {
            out.extend(check_no_float_time(&r, &raw));
        }
        if !WALLCLOCK_SANCTUARIES.iter().any(|s| r.starts_with(s)) {
            out.extend(check_no_wallclock(&r, &raw));
        }
        // no-println-in-lib over library src trees: everything under
        // crates/*/src and the facade's src/, minus src/bin/ and the
        // print-by-design sanctuaries.
        let in_lib_src = (r.starts_with("crates") || r.starts_with("src"))
            && r.components().any(|c| c.as_os_str() == "src")
            && !r.components().any(|c| c.as_os_str() == "bin");
        if in_lib_src && !PRINTLN_SANCTUARIES.iter().any(|s| r.starts_with(s)) {
            out.extend(check_no_println(&r, &raw));
        }
        // no-panic-in-lib over the same library src trees; crates the
        // no-unwrap rule already polices only get the panic! needle
        // (their unwraps are no-unwrap's findings, not duplicates here).
        if in_lib_src && !PANIC_SANCTUARIES.iter().any(|s| r.starts_with(s)) {
            let unwrap_covered = NO_UNWRAP_CRATES.iter().any(|s| r.starts_with(s));
            out.extend(check_no_panic(&r, &raw, !unwrap_covered));
        }
        out.extend(check_no_unsafe(&r, &raw));
        out.extend(check_fault_kind_doc(&r, &raw));
    }

    // forbid-unsafe-attr on crate roots.
    for f in crate_roots(repo) {
        if let Ok(raw) = fs::read_to_string(&f) {
            out.extend(check_forbid_attr(&rel(repo, &f), &raw));
        }
    }

    // aqm-doc-cite where AQMs live.
    for krate in ["crates/core", "crates/baselines"] {
        for f in rust_files(&repo.join(krate).join("src")) {
            if let Ok(raw) = fs::read_to_string(&f) {
                out.extend(check_aqm_doc_cite(&rel(repo, &f), &raw));
            }
        }
    }

    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    out
}

// ---------------------------------------------------------------------------
// Seeded-violation tests: every rule must fire on a planted violation and
// stay silent on the clean equivalent.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> PathBuf {
        PathBuf::from("crates/fake/src/x.rs")
    }

    #[test]
    fn code_view_strips_comments_and_strings() {
        let src = "let a = \"has .unwrap() inside\"; // and .unwrap() here\nlet b = 1;\n";
        let v = code_view(src);
        assert!(!v.contains(".unwrap()"), "view: {v}");
        assert!(v.contains("let a ="));
        assert!(v.contains("let b = 1;"));
        assert_eq!(v.lines().count(), src.lines().count());
    }

    #[test]
    fn code_view_handles_raw_strings_and_chars() {
        let src = "let s = r#\"raw .expect( text\"#;\nlet c = '\\n';\nlet lt: &'static str = \"x\";\n";
        let v = code_view(src);
        assert!(!v.contains(".expect("));
        assert!(v.contains("&'static str"), "lifetime mangled: {v}");
        assert_eq!(v.lines().count(), 3);
    }

    #[test]
    fn code_view_handles_nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still comment */ let x = 2;\n";
        let v = code_view(src);
        assert!(!v.contains(".unwrap()"));
        assert!(v.contains("let x = 2;"));
    }

    #[test]
    fn seeded_unwrap_is_caught() {
        let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
        let d = check_no_unwrap(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].rule, "no-unwrap");
    }

    #[test]
    fn seeded_expect_is_caught() {
        let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.expect(\"boom\")\n}\n";
        let d = check_no_unwrap(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn unwrap_in_test_mod_is_ignored() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
        assert!(check_no_unwrap(&p(), src).is_empty());
    }

    #[test]
    fn unwrap_after_test_mod_is_still_caught() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n\npub fn g(o: Option<u32>) -> u32 { o.unwrap() }\n";
        let d = check_no_unwrap(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 6);
    }

    #[test]
    fn justified_allow_suppresses() {
        let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.expect(\"x\") // lint:allow(no-unwrap): overflow must abort, wraparound corrupts clock\n}\n";
        assert!(check_no_unwrap(&p(), src).is_empty());
    }

    #[test]
    fn bare_allow_is_itself_flagged() {
        let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap() // lint:allow(no-unwrap)\n}\n";
        let d = check_no_unwrap(&p(), src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("justification"), "{}", d[0].message);
    }

    #[test]
    fn seeded_panic_is_caught() {
        let src = "pub fn f(x: u32) {\n    if x > 3 {\n        panic!(\"x too big\");\n    }\n}\n";
        let d = check_no_panic(&p(), src, false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-panic-in-lib");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn panic_in_test_mod_is_ignored() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        panic!(\"assertion helpers may panic\");\n    }\n}\n";
        assert!(check_no_panic(&p(), src, true).is_empty());
    }

    #[test]
    fn unwrap_needle_only_when_not_covered_by_no_unwrap() {
        let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
        assert!(
            check_no_panic(&p(), src, false).is_empty(),
            "covered crates leave unwraps to the no-unwrap rule"
        );
        let d = check_no_panic(&p(), src, true);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn justified_panic_allow_suppresses() {
        let src = "panic!(\"{v}\"); // lint:allow(no-panic-in-lib): strict audit mode must abort on violation\n";
        assert!(check_no_panic(&p(), src, false).is_empty());
    }

    #[test]
    fn panic_in_comment_or_string_is_clean() {
        let src = "// panic! is banned here\nlet s = \"panic!(no)\";\n";
        assert!(check_no_panic(&p(), src, true).is_empty());
    }

    #[test]
    fn seeded_float_time_is_caught() {
        let src = "pub fn f(t: Time) -> f64 {\n    t.as_ps() as f64\n}\n";
        let d = check_no_float_time(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-float-time");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn sanctioned_float_accessor_is_clean() {
        let src = "pub fn f(t: Time) -> f64 {\n    t.as_us_f64()\n}\n";
        assert!(check_no_float_time(&p(), src).is_empty());
    }

    #[test]
    fn seeded_wallclock_is_caught() {
        let src = "pub fn f() {\n    let t0 = std::time::Instant::now();\n    let _ = t0;\n}\n";
        let d = check_no_wallclock(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-wallclock");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn seeded_wallclock_in_test_mod_is_still_caught() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::SystemTime::now(); }\n}\n";
        let d = check_no_wallclock(&p(), src);
        assert_eq!(d.len(), 1, "tests get no wallclock exemption");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn wallclock_in_comment_or_string_is_clean() {
        let src = "// Instant::now is banned\nlet s = \"std::time::Instant\";\n";
        assert!(check_no_wallclock(&p(), src).is_empty());
    }

    #[test]
    fn justified_wallclock_allow_suppresses() {
        let src = "let t0 = std::time::Instant::now(); // lint:allow(no-wallclock): CLI convenience print of elapsed wall time\n";
        assert!(check_no_wallclock(&p(), src).is_empty());
    }

    #[test]
    fn seeded_println_is_caught() {
        let src = "pub fn f(x: u32) {\n    println!(\"x = {x}\");\n}\n";
        let d = check_no_println(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-println-in-lib");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn seeded_eprintln_is_caught() {
        let src = "pub fn f() {\n    eprintln!(\"warning\");\n}\n";
        let d = check_no_println(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn println_in_test_mod_is_ignored() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        println!(\"debugging a test is fine\");\n    }\n}\n";
        assert!(check_no_println(&p(), src).is_empty());
    }

    #[test]
    fn println_in_comment_or_string_is_clean() {
        let src = "// println! is banned in libs\nlet s = \"println!\";\n";
        assert!(check_no_println(&p(), src).is_empty());
    }

    #[test]
    fn justified_println_allow_suppresses() {
        let src = "println!(\"{report}\"); // lint:allow(no-println-in-lib): the run-report sink's whole job is printing\n";
        assert!(check_no_println(&p(), src).is_empty());
    }

    #[test]
    fn seeded_unsafe_is_caught_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n";
        let d = check_no_unsafe(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn unsafe_in_word_or_comment_is_clean() {
        let src = "#![forbid(unsafe_code)]\n// the word unsafe in a comment\nlet not_unsafe_ident = 1;\n";
        assert!(check_no_unsafe(&p(), src).is_empty());
    }

    #[test]
    fn missing_forbid_attr_is_caught() {
        let d = check_forbid_attr(&p(), "//! docs only\npub fn f() {}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "forbid-unsafe-attr");
        assert!(check_forbid_attr(&p(), "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn aqm_without_citation_is_caught() {
        let src = "/// A marking scheme with no citation.\npub struct Foo;\n\nimpl Aqm for Foo {\n}\n";
        let d = check_aqm_doc_cite(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "aqm-doc-cite");
        assert!(d[0].message.contains("Foo"));
    }

    #[test]
    fn aqm_with_citation_is_clean() {
        let src = "/// Sojourn marking per the paper (§4.2).\npub struct Foo;\n\nimpl Aqm for Foo {\n}\n";
        assert!(check_aqm_doc_cite(&p(), src).is_empty());
    }

    #[test]
    fn aqm_citation_may_sit_above_derive() {
        let src = "/// Cited scheme (§3.2).\n#[derive(Debug, Clone)]\npub struct Foo;\n\nimpl Aqm for Foo {\n}\n";
        assert!(check_aqm_doc_cite(&p(), src).is_empty());
    }

    #[test]
    fn undocumented_fault_kind_variant_is_caught() {
        let src = "pub enum FaultKind {\n    /// A flaky optic silently eating frames on the wire.\n    Loss,\n    Corrupt,\n}\n";
        let d = check_fault_kind_doc(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "fault-kind-doc");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("Corrupt"), "{}", d[0].message);
    }

    #[test]
    fn trivial_fault_kind_doc_is_caught() {
        // A doc comment that names nothing ("/// Loss.") is as useless
        // as no doc at all.
        let src = "pub enum FaultKind {\n    /// Loss.\n    Loss,\n}\n";
        let d = check_fault_kind_doc(&p(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn documented_fault_kind_is_clean() {
        let src = "pub enum FaultKind {\n    /// A flaky optic silently eating frames on the wire.\n    Loss,\n    /// Bit errors past the FEC budget; receiver drops on bad CRC.\n    #[allow(dead_code)]\n    Corrupt,\n}\n";
        assert!(check_fault_kind_doc(&p(), src).is_empty());
    }

    #[test]
    fn fault_kind_struct_variant_fields_are_not_variants() {
        let src = "pub enum FaultKind {\n    /// Maintenance pulling the wrong cable: the link goes dark.\n    LinkDown {\n        Link: u32,\n    },\n}\n";
        assert!(check_fault_kind_doc(&p(), src).is_empty());
    }

    #[test]
    fn other_enums_are_out_of_scope() {
        let src = "pub enum FaultKindred {\n    Undocumented,\n}\npub enum Other {\n    AlsoUndocumented,\n}\n";
        assert!(check_fault_kind_doc(&p(), src).is_empty());
    }

    #[test]
    fn diagnostic_formats_as_file_line_rule() {
        let d = Diagnostic {
            file: PathBuf::from("crates/core/src/x.rs"),
            line: 7,
            rule: "no-unwrap",
            message: "msg".into(),
        };
        assert_eq!(d.to_string(), "crates/core/src/x.rs:7: [no-unwrap] msg");
    }
}
