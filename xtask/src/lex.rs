//! A hand-rolled, dependency-free lexer for Rust source.
//!
//! This is the foundation of the token-level lint engine: instead of
//! substring-scanning a comment-stripped "code view" (the pre-PR-6
//! approach, preserved in [`crate::legacy`] as the differential
//! oracle), rules pattern-match over a token stream with exact
//! `line:col` spans. That is what lets a rule distinguish the
//! identifier `HashMap` in code from the same nine characters inside a
//! string literal or a doc comment — the false-positive class that
//! capped what the substring engine could express.
//!
//! The lexer is deliberately *not* a full Rust lexer: it has no notion
//! of keywords vs identifiers (rules match identifier text), does not
//! validate numeric literal grammar, and never rejects input — on
//! malformed source it degrades to single-character punct tokens. What
//! it does handle precisely, because the rules depend on it:
//!
//! * line comments (incl. `///` and `//!` docs) and **nested** block
//!   comments, emitted as trivia tokens so doc-inspecting rules
//!   (`aqm-doc-cite`, `fault-kind-doc`, `exhaustive-kind-tags`) can see
//!   them;
//! * string, byte-string, **raw** string (`r#"…"#` with any number of
//!   hashes) and char literals, emitted as opaque literal tokens;
//! * lifetimes (`'a`) vs char literals (`'a'`, `'\n'`);
//! * raw identifiers (`r#fn`);
//! * multi-character operators by longest match (`::`, `..=`, `<<=` …),
//!   so `a..=b` never lexes as three stray dots.

/// What a [`Token`] is. Comments are included in the stream (rules that
/// read docs need them); most rules iterate the comment-free view via
/// [`crate::engine::SourceFile::code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `unsafe`, `r#fn` — text excludes
    /// the `r#` prefix so raw and plain spellings compare equal).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// A char or byte-char literal, quotes included in the text.
    Char,
    /// A string / raw-string / byte-string literal, delimiters included.
    Str,
    /// An integer or float literal (suffix included, e.g. `10u64`).
    Num,
    /// Operator / punctuation, longest-match (`::`, `->`, `..=`, `+`).
    Punct,
    /// `// …` comment; `doc` is true for `///` and `//!` forms.
    LineComment {
        /// True for `///` / `//!` doc comments.
        doc: bool,
    },
    /// `/* … */` comment (nesting handled); `doc` true for `/**`, `/*!`.
    BlockComment {
        /// True for `/**` / `/*!` doc comments.
        doc: bool,
    },
}

/// One lexed token with its 1-based source position (`col` counts bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text (see [`TokenKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: usize,
    /// 1-based byte column of the token's first byte.
    pub col: usize,
}

impl Token {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this is a punct token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }

    /// True for line or block comments, doc or not.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// True for `///`, `//!`, `/**`, `/*!` comments.
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
        )
    }

    /// The prose of a doc comment: text with the comment markers and
    /// leading asterisk decoration stripped. Empty for non-comments.
    pub fn doc_text(&self) -> &str {
        match self.kind {
            TokenKind::LineComment { .. } => self
                .text
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim(),
            TokenKind::BlockComment { .. } => self
                .text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_start_matches('!')
                .trim_end_matches('/')
                .trim_end_matches('*')
                .trim(),
            _ => "",
        }
    }
}

/// Multi-character operators, longest first within each leading byte so
/// a greedy scan is a correct longest-match.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Cursor state threaded through the lexer helpers.
struct Cursor<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Advance over `n` bytes, updating the line/col bookkeeping.
    fn bump(&mut self, n: usize) {
        for _ in 0..n {
            if self.i >= self.b.len() {
                return;
            }
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.i += 1;
        }
    }

    /// The char starting at byte offset `i + ahead_bytes`, if any.
    fn char_at(&self, ahead: usize) -> Option<char> {
        self.src[(self.i + ahead).min(self.src.len())..].chars().next()
    }
}

/// Lex `src` into a token stream (comments included as trivia tokens).
/// Never fails; unrecognized bytes become single-byte [`TokenKind::Punct`]
/// tokens.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();

    while cur.i < cur.b.len() {
        let (line, col) = (cur.line, cur.col);
        let start = cur.i;
        let c = cur.b[cur.i];

        // Whitespace.
        if c.is_ascii_whitespace() {
            cur.bump(1);
            continue;
        }

        // Comments.
        if c == b'/' && cur.peek(1) == Some(b'/') {
            let end = src[cur.i..].find('\n').map_or(src.len(), |n| cur.i + n);
            let text = &src[cur.i..end];
            let doc = (text.starts_with("///") && !text.starts_with("////"))
                || text.starts_with("//!");
            cur.bump(end - cur.i);
            out.push(Token {
                kind: TokenKind::LineComment { doc },
                text: text.to_string(),
                line,
                col,
            });
            continue;
        }
        if c == b'/' && cur.peek(1) == Some(b'*') {
            let mut depth = 0usize;
            let mut j = cur.i;
            while j < cur.b.len() {
                if cur.b[j] == b'/' && cur.b.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if cur.b[j] == b'*' && cur.b.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    j += 1;
                }
            }
            let text = &src[cur.i..j.min(src.len())];
            let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
                || text.starts_with("/*!");
            cur.bump(j - cur.i);
            out.push(Token {
                kind: TokenKind::BlockComment { doc },
                text: text.to_string(),
                line,
                col,
            });
            continue;
        }

        // Raw identifiers and raw / byte strings.
        if let Some(tok) = lex_raw_or_byte(&mut cur, line, col) {
            out.push(tok);
            continue;
        }

        // Plain strings.
        if c == b'"' {
            let end = scan_string(cur.b, cur.i);
            let text = src[cur.i..end].to_string();
            cur.bump(end - cur.i);
            out.push(Token { kind: TokenKind::Str, text, line, col });
            continue;
        }

        // Lifetimes and char literals.
        if c == b'\'' {
            if is_char_literal(&cur) {
                let end = scan_char(cur.b, cur.i);
                let text = src[cur.i..end].to_string();
                cur.bump(end - cur.i);
                out.push(Token { kind: TokenKind::Char, text, line, col });
            } else {
                cur.bump(1); // the quote
                let mut n = 0;
                while cur.char_at(n).is_some_and(is_ident_continue) {
                    n += cur.char_at(n).map_or(1, char::len_utf8);
                }
                let text = src[cur.i..cur.i + n].to_string();
                cur.bump(n);
                out.push(Token { kind: TokenKind::Lifetime, text, line, col });
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let end = scan_number(cur.b, cur.i);
            let text = src[cur.i..end].to_string();
            cur.bump(end - cur.i);
            out.push(Token { kind: TokenKind::Num, text, line, col });
            continue;
        }

        // Identifiers / keywords.
        if cur.char_at(0).is_some_and(is_ident_start) {
            let mut n = 0;
            while cur.char_at(n).is_some_and(is_ident_continue) {
                n += cur.char_at(n).map_or(1, char::len_utf8);
            }
            let text = src[cur.i..cur.i + n].to_string();
            cur.bump(n);
            out.push(Token { kind: TokenKind::Ident, text, line, col });
            continue;
        }

        // Punctuation, longest match first.
        let mut matched = false;
        for p in PUNCTS {
            if src[cur.i..].starts_with(p) {
                cur.bump(p.len());
                out.push(Token {
                    kind: TokenKind::Punct,
                    text: (*p).to_string(),
                    line,
                    col,
                });
                matched = true;
                break;
            }
        }
        if !matched {
            // Single char (multibyte chars pass through whole).
            let n = cur.char_at(0).map_or(1, char::len_utf8);
            let text = src[start..start + n].to_string();
            cur.bump(n);
            out.push(Token { kind: TokenKind::Punct, text, line, col });
        }
    }

    out
}

/// Handle `r#ident`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`.
/// Returns `None` when the cursor is not at one of those forms.
fn lex_raw_or_byte(cur: &mut Cursor, line: usize, col: usize) -> Option<Token> {
    let b = cur.b;
    let i = cur.i;
    let c = b[i];
    if c != b'r' && c != b'b' {
        return None;
    }
    // An identifier char before us means `r`/`b` is part of a name.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return None;
    }
    // b'x' byte char.
    if c == b'b' && cur.peek(1) == Some(b'\'') {
        let end = scan_char(b, i + 1);
        let text = cur.src[i..end].to_string();
        cur.bump(end - i);
        return Some(Token { kind: TokenKind::Char, text, line, col });
    }
    // b"…" byte string.
    if c == b'b' && cur.peek(1) == Some(b'"') {
        let end = scan_string(b, i + 1);
        let text = cur.src[i..end].to_string();
        cur.bump(end - i);
        return Some(Token { kind: TokenKind::Str, text, line, col });
    }
    // r… / br… raw forms.
    let raw_at = if c == b'r' {
        i + 1
    } else if c == b'b' && cur.peek(1) == Some(b'r') {
        i + 2
    } else {
        return None;
    };
    let mut j = raw_at;
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        // Raw (byte) string: scan for `"` followed by `hashes` hashes.
        let mut k = j + 1;
        let end = loop {
            match b.get(k) {
                None => break b.len(),
                Some(b'"') => {
                    let mut h = 0;
                    while b.get(k + 1 + h) == Some(&b'#') && h < hashes {
                        h += 1;
                    }
                    if h == hashes {
                        break k + 1 + hashes;
                    }
                    k += 1;
                }
                Some(_) => k += 1,
            }
        };
        let text = cur.src[i..end].to_string();
        cur.bump(end - i);
        return Some(Token { kind: TokenKind::Str, text, line, col });
    }
    if c == b'r' && hashes == 1 && cur.char_at(2).is_some_and(is_ident_start) {
        // Raw identifier r#fn — emit as Ident without the prefix.
        cur.bump(2);
        let mut n = 0;
        while cur.char_at(n).is_some_and(is_ident_continue) {
            n += cur.char_at(n).map_or(1, char::len_utf8);
        }
        let text = cur.src[cur.i..cur.i + n].to_string();
        cur.bump(n);
        return Some(Token { kind: TokenKind::Ident, text, line, col });
    }
    None
}

/// End offset (exclusive) of a `"…"` string starting at `b[i]`.
fn scan_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// End offset (exclusive) of a `'…'` char literal starting at `b[i]`.
fn scan_char(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// End offset of a numeric literal starting at `b[i]` (a digit).
/// Accepts int/float/exponent/suffix forms loosely; stops before `..`
/// so ranges lex as two tokens.
fn scan_number(b: &[u8], i: usize) -> usize {
    let mut j = i;
    let mut seen_dot = false;
    while j < b.len() {
        let c = b[j];
        if c.is_ascii_alphanumeric() || c == b'_' {
            // `1e-5` / `1E+5`: pull the sign into the literal.
            if (c == b'e' || c == b'E')
                && matches!(b.get(j + 1), Some(b'+') | Some(b'-'))
                && b.get(j + 2).is_some_and(u8::is_ascii_digit)
            {
                j += 2;
            }
            j += 1;
        } else if c == b'.' && !seen_dot && b.get(j + 1).is_some_and(u8::is_ascii_digit) {
            seen_dot = true;
            j += 1;
        } else {
            break;
        }
    }
    j
}

/// True if the `'` under the cursor opens a char literal rather than a
/// lifetime: `'\…'` always; `'x'` (any single char then a quote) yes;
/// `'abc` no.
fn is_char_literal(cur: &Cursor) -> bool {
    match cur.char_at(1) {
        Some('\\') => true,
        Some(c) if c != '\'' => cur.char_at(1 + c.len_utf8()) == Some('\''),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Ident, "a".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "unwrap".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn string_contents_are_opaque() {
        // The whole point of token-level linting: `HashMap` in a string
        // is not an identifier.
        assert_eq!(idents("let s = \"HashMap .unwrap()\";"), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds("let s = r#\"quote \" inside .expect( \"#;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quote")));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "expect"));
        // Double-hash form with an embedded single-hash closer.
        let toks = kinds("r##\"has \"# inside\"##");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokenKind::Str);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds("let b = b\"bytes\"; let r = br#\"raw\"#; let c = b'x';");
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "b'x'"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(lifetimes[0].1, "a");
        assert_eq!(chars.len(), 2, "{toks:?}");
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn static_lifetime_in_type_position() {
        let toks = kinds("const S: &'static str = \"x\";");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "static"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner .unwrap() */ still */ let x = 2;");
        assert_eq!(toks[0].0, TokenKind::BlockComment { doc: false });
        assert!(toks[0].1.contains("inner"));
        assert!(idents("/* a /* b */ c */ let y = 1;").contains(&"let".to_string()));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let toks = lex("/// outer doc\n//! inner doc\n// plain\nfn f() {}\n");
        assert_eq!(toks[0].kind, TokenKind::LineComment { doc: true });
        assert_eq!(toks[0].doc_text(), "outer doc");
        assert_eq!(toks[1].kind, TokenKind::LineComment { doc: true });
        assert_eq!(toks[2].kind, TokenKind::LineComment { doc: false });
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
    }

    #[test]
    fn longest_match_puncts() {
        let toks = kinds("a..=b; c::d; e <<= 2; f..g");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"..="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"<<="));
        assert!(puncts.contains(&".."));
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let toks = kinds("let a = 1_000u64; let b = 1.5e-3; for i in 0..10 {}");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["1_000u64", "1.5e-3", "0", "10"]);
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        let toks = kinds("self.0.checked_add(rhs.0)");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "0"]);
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let toks = lex("let x = 1;\n  y.unwrap();\n");
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!((unwrap.line, unwrap.col), (2, 5));
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!((y.line, y.col), (2, 3));
    }

    #[test]
    fn multiline_tokens_advance_lines() {
        let toks = lex("/* a\nb */ let s = \"x\ny\";\nz");
        let z = toks.iter().find(|t| t.is_ident("z")).unwrap();
        assert_eq!(z.line, 4);
    }

    #[test]
    fn unterminated_forms_do_not_hang() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
            let _ = lex(src); // must terminate without panicking
        }
    }
}
