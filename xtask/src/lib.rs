//! The repo's dependency-free automation library: a token-level static
//! analyzer for the determinism discipline, plus the JSON plumbing the
//! `cargo xtask` CLI (see `main.rs`) and the self-test suite share.
//!
//! Layered bottom-up:
//!
//! * [`lex`] — a hand-rolled, pure-std Rust lexer (identifiers, puncts,
//!   literals, lifetimes, raw strings, nested comments) with
//!   `file:line:col` spans.
//! * [`engine`] — the [`Rule`](engine::Rule) trait, the suppression
//!   ledger (`lint:allow` with mandatory justification, `unused-allow`
//!   for stale escapes), the repo walk, and JSON serialization.
//! * [`rules`] — the registry: nine rules migrated from the substring
//!   era plus the determinism family (`no-hash-iter`,
//!   `no-thread-outside-runner`, `no-ambient-entropy`,
//!   `no-raw-tick-arith`, `exhaustive-kind-tags`).
//! * [`lint`] — the driver `cargo xtask lint` calls, and the generated
//!   rule table.
//! * [`legacy`] — the retired substring engine, kept as the
//!   differential oracle the self-tests compare against.
//! * [`jsonck`] — a minimal JSON parser that schema-checks the lint
//!   engine's own `--format json` output in `ci`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod jsonck;
pub mod legacy;
pub mod lex;
pub mod lint;
pub mod rules;
