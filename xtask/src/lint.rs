//! The lint driver: wires the repo walk to the token
//! [`engine`](crate::engine) and the [`rules`](crate::rules) registry.
//!
//! Design constraints (mirroring the simulator's own rules):
//!
//! * **Pure std.** No regex crate, no syn, no cargo metadata — the
//!   container must never need the network. The engine lexes each file
//!   with a hand-rolled Rust lexer ([`crate::lex`]) and rules match
//!   token sequences, so `HashMap` in a string literal or a comment is
//!   never a finding.
//! * **Span-accurate.** Diagnostics carry `file:line:col` from real
//!   token positions.
//! * **Test-aware.** `#[cfg(test)] mod … { … }` blocks are excluded
//!   from rules that only govern production code (tests may
//!   `.unwrap()`); determinism rules opt out of the exemption — a test
//!   that observes hash order flakes like any library would.
//! * **Escapable with a paper trail.** A trailing
//!   `lint:allow(<rule>): <justification>` comment suppresses one rule
//!   on one line; an allow *without* a justification is itself a
//!   violation, and an allow that suppresses nothing is an
//!   `unused-allow` finding (stale escapes rot into lies).
//!
//! The rule table below is generated from the registry
//! (`cargo xtask lint --list` prints the same rows); a self-test
//! asserts this doc, the README, and the registry cannot drift.
//!
//! | rule | severity | scope | what it catches |
//! |------|----------|-------|-----------------|
//! | `no-unwrap` | deny | library crate `src/` (core, sim, net, sched, baselines, transport) | `.unwrap()` / `.expect(` in production code — return an error or restructure |
//! | `no-panic-in-lib` | deny | library `src/` trees except `src/bin/`, experiments, bench, xtask | `panic!` in library code (plus `.unwrap()`/`.expect(` where `no-unwrap` does not reach) — return a `TcnError` |
//! | `no-println-in-lib` | deny | library `src/` trees except `src/bin/`, experiments, bench, xtask | `println!` / `eprintln!` in library code — emit a telemetry event instead |
//! | `no-float-time` | deny | every `.rs` file except `sim/src/time.rs` | `.as_ps() as f64`-style raw picosecond float casts — use the named `Time` accessors |
//! | `no-wallclock` | deny | every `.rs` file except `crates/bench/`, `xtask/` | host-clock reads (`std::time::Instant`, `SystemTime`) — simulation code runs on virtual `Time` only |
//! | `no-unsafe` | deny | every `.rs` file | the `unsafe` keyword anywhere in the repo (tests included) |
//! | `forbid-unsafe-attr` | deny | every crate root (`src/lib.rs`, `src/main.rs`) | a crate root missing `#![forbid(unsafe_code)]` |
//! | `aqm-doc-cite` | deny | `crates/core/src`, `crates/baselines/src` | a public AQM whose doc comment never cites a paper section (`§`) |
//! | `fault-kind-doc` | deny | every `.rs` file | a `FaultKind` variant without a doc comment naming its real-world failure mode |
//! | `no-hash-iter` | deny | every `.rs` file (tests included) | `HashMap` / `HashSet` (hash-order iteration is seeded per process) — use `BTreeMap` / `BTreeSet` |
//! | `no-thread-outside-runner` | deny | every `.rs` file except `experiments/src/runner.rs`, `crates/bench/`, `xtask/` | `std::thread` use outside the deterministic sweep runner — route parallelism through it |
//! | `no-ambient-entropy` | deny | every `.rs` file (tests included) | ambient randomness (`RandomState`, `thread_rng`, `OsRng`, …) — draw from the run's seeded `Rng` |
//! | `no-raw-tick-arith` | deny | every `.rs` file except `sim/src/time.rs` | `+`/`-` on a raw `.as_ps()` tick count — do the arithmetic on `Time` (checked), convert at the edge |
//! | `exhaustive-kind-tags` | deny | every `.rs` file (fires where `enum TcnError` is defined) | a `TcnError` variant without a doc comment or without an explicit stable string tag in `kind()` |
//! | `scenario-step-doc` | deny | every `.rs` file (fires where `enum StepMutation` is defined) | a `StepMutation` variant whose doc comment lacks a unique backticked `step:<tag>` marker |
//! | `cc-doc-cite` | deny | `crates/transport/src` | a congestion controller whose doc comment never cites its source RFC/paper section (`§`) |
//! | `unused-allow` | deny | every `.rs` file | a `lint:allow(<rule>)` escape that suppresses zero diagnostics (stale or unknown rule) — delete it |

use std::path::Path;

use crate::engine::{load_repo, run, Diagnostic};
use crate::rules::registry;

/// Run the full registry over the repository rooted at `repo`. Returns
/// all diagnostics (suppressions already applied), sorted by
/// `(file, line, col, rule)`.
pub fn lint_repo(repo: &Path) -> Vec<Diagnostic> {
    run(&load_repo(repo), &registry())
}

/// The `--list` output: one generated markdown row per registered rule,
/// header included — the exact rows embedded in this module's doc and
/// in `README.md`.
pub fn rule_table() -> String {
    let mut s = String::from(
        "| rule | severity | scope | what it catches |\n\
         |------|----------|-------|-----------------|\n",
    );
    for rule in registry() {
        s.push_str(&crate::rules::table_row(rule.as_ref()));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_doc_table_matches_registry() {
        let src = include_str!("lint.rs");
        for rule in registry() {
            let row = crate::rules::table_row(rule.as_ref());
            assert!(
                src.contains(&row),
                "rule table row for `{}` missing from or stale in \
                 xtask/src/lint.rs module docs — regenerate with \
                 `cargo xtask lint --list`:\n{row}",
                rule.id()
            );
        }
    }

    #[test]
    fn rule_table_lists_every_rule_once() {
        let table = rule_table();
        for rule in registry() {
            assert_eq!(
                table.matches(&format!("| `{}` |", rule.id())).count(),
                1,
                "{}",
                rule.id()
            );
        }
    }
}
