//! `cargo xtask` — the repo's dependency-free automation entry point.
//!
//! Subcommands:
//!
//! * `lint`  — run the token-level static analyzer (see
//!   [`xtask::lint`]) over the repository. Prints
//!   `file:line:col: [rule] message` diagnostics and exits nonzero if
//!   any deny-severity finding fires. Flags:
//!   * `--list` — print the generated rule table (id, severity, scope,
//!     summary) and exit;
//!   * `--rule <id>` (repeatable) — narrow *output* to the named rules
//!     (every rule still executes, so `unused-allow` stays accurate);
//!   * `--format json` — emit the versioned JSON document on stdout
//!     (human diagnostics go to stderr), schema-checked before
//!     printing.
//! * `build` — `cargo build --release --workspace`.
//! * `test`  — `cargo test -q` (the tier-1 test set, from ROADMAP.md).
//! * `test-all` — `cargo test -q --workspace` (every crate's suites;
//!   much slower — the experiments crate simulates full FCT sweeps in
//!   debug mode with the audit hooks live).
//! * `bench` — build and run the `perfbench` baseline harness in
//!   release mode, rewriting the checked-in `BENCH_engine.json` and
//!   `BENCH_sweep.json` at the repo root. With `--smoke`, runs the
//!   reduced measurement and only *compares* the machine-independent
//!   calendar-vs-binheap throughput ratio against the checked-in
//!   baseline, failing on a >25 % regression (no files are written).
//! * `ci`    — build, then test, then tier-1 again in release with
//!   `--features audit` (every runtime invariant checker live), then
//!   `lint-selftest` (the xtask test suite: lexer units, rule
//!   fixtures, and the old-vs-new engine differential), then lint in
//!   `--format json` mode (the document is schema-checked), then a
//!   telemetry smoke stage (`figs trace` one figure with a JSONL sink
//!   and `figs check-trace` the result against the schema), then a
//!   resume smoke stage (kill a checkpointed sweep mid-grid, resume
//!   it, byte-compare against an uninterrupted control run), then a
//!   scenario smoke stage (two named chaos scenarios at `--quick` with
//!   JSONL traces validated against the schema), then a fuzz smoke
//!   stage (eight fixed scenario-fuzzer seeds, zero violations
//!   expected), then a cc smoke stage (the mixed-tenant
//!   DCTCP/CUBIC/BBR figure at `--quick` with its JSONL trace
//!   schema-validated), then a hybrid smoke stage (one `--quick` figure run
//!   packet-level and again under `TCN_HYBRID=1`, asserting matching
//!   summary statistics), then `bench --smoke`: the tier-1 gate in
//!   one command. Stops at the first failing stage.
//!
//! Everything here is pure std: the harness must work in an offline
//! container with nothing but the Rust toolchain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::env;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use xtask::engine::{filter_rules, Severity};
use xtask::{jsonck, lint, rules};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let repo = repo_root();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint_cli(&repo, &args[1..]),
        Some("build") => run_cargo(&repo, &["build", "--release", "--workspace"]),
        Some("test") => run_cargo(&repo, &["test", "-q"]),
        Some("test-all") => run_cargo(&repo, &["test", "-q", "--workspace"]),
        Some("bench") => {
            if args.iter().any(|a| a == "--smoke") {
                run_bench_smoke(&repo)
            } else {
                run_cargo(&repo, &["run", "--release", "-p", "tcn-bench", "--bin", "perfbench"])
            }
        }
        Some("ci") => {
            let stages: [(&str, fn(&Path) -> ExitCode); 12] = [
                ("build", |r| run_cargo(r, &["build", "--release", "--workspace"])),
                ("test", |r| run_cargo(r, &["test", "-q"])),
                // Tier-1 again in release with every runtime invariant
                // checker live — debug runs audit via debug_assertions,
                // so this is the only stage covering the feature path.
                ("test (audit)", |r| {
                    run_cargo(r, &["test", "-q", "--release", "--features", "audit"])
                }),
                // The lint engine's own suite: lexer units, per-rule
                // fixture corpus, and the substring-vs-token engine
                // differential. Runs before `lint` so a broken analyzer
                // can't greenlight the repo.
                ("lint-selftest", |r| run_cargo(r, &["test", "-q", "-p", "xtask"])),
                ("lint", run_lint_json_stage),
                // Trace one figure cell through the telemetry bus and
                // validate the JSONL against the schema: proves the
                // probes, sinks and trace writer agree end to end.
                ("telemetry (smoke)", run_telemetry_smoke),
                // Kill a checkpointed sweep mid-grid, resume it, and
                // byte-compare against an uninterrupted control run:
                // proves checkpoint/resume reproduces exact output.
                ("resume (smoke)", run_resume_smoke),
                // Two named chaos scenarios at `--quick` with JSONL
                // traces attached, each validated against the schema:
                // proves the scenario engine, the runtime
                // reconfiguration surface, and the telemetry bus agree.
                ("scenario (smoke)", run_scenario_smoke),
                // Eight fixed fuzzer seeds through the scenario fuzzer,
                // expecting zero violations: the generator only emits
                // survivable chaos, so any failure is a system bug.
                ("fuzz (smoke)", run_fuzz_smoke),
                // The mixed-tenant congestion-control figure at
                // `--quick` with a JSONL trace validated against the
                // schema: proves the pluggable-CC surface (DCTCP,
                // CUBIC and BBR sharing one port), the ECN-capability
                // split, and the CC telemetry events agree end to end.
                ("cc (smoke)", run_cc_smoke),
                // One quick figure twice — packet-level and
                // `TCN_HYBRID=1` — asserting matching summary
                // statistics (identical grid, flow and completion
                // counts; toleranced mean FCTs): the fluid fast path
                // must not move a figure's conclusions.
                ("hybrid (smoke)", run_hybrid_smoke),
                // Guard the hot-path baselines: a >25% drop in the
                // calendar-vs-binheap or batched-vs-per-event
                // dispatch ratios fails the gate.
                ("bench (smoke)", run_bench_smoke),
            ];
            for (name, stage) in stages {
                eprintln!("xtask ci: {name}");
                let code = stage(&repo);
                if code != ExitCode::SUCCESS {
                    eprintln!("xtask ci: {name} FAILED");
                    return code;
                }
            }
            eprintln!("xtask ci: all stages passed");
            ExitCode::SUCCESS
        }
        Some("help") | None => {
            eprintln!(
                "usage: cargo xtask <lint|build|test|test-all|bench|ci>\n\
                 \n\
                 lint      token-level static analysis (17 rules: panic/print\n\
                 \x20         discipline, unsafe bans, doc provenance, and the\n\
                 \x20         determinism family — no-hash-iter,\n\
                 \x20         no-thread-outside-runner, no-ambient-entropy,\n\
                 \x20         no-raw-tick-arith, exhaustive-kind-tags,\n\
                 \x20         scenario-step-doc, …)\n\
                 \x20         [--list | --rule <id>]... [--format json]\n\
                 build     cargo build --release --workspace\n\
                 test      cargo test -q (tier-1 test set)\n\
                 test-all  cargo test -q --workspace (slow, every crate)\n\
                 bench     run perfbench, rewrite BENCH_*.json baselines\n\
                 \x20         (--smoke: compare-only regression gate)\n\
                 ci        build + test + test(audit) + lint-selftest +\n\
                 \x20         lint(json) + telemetry(smoke) + resume(smoke) +\n\
                 \x20         scenario(smoke) + fuzz(smoke) + cc(smoke) +\n\
                 \x20         hybrid(smoke) + bench(smoke) (the tier-1 gate)"
            );
            if args.is_empty() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}` (try `cargo xtask help`)");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: parent of the `xtask/` directory this binary was
/// built from, falling back to the current directory (the `cargo xtask`
/// alias always runs at the root).
fn repo_root() -> PathBuf {
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// The `lint` subcommand: parse `--list` / `--rule <id>` /
/// `--format json`, run the registry, print, gate on deny findings.
fn run_lint_cli(repo: &Path, flags: &[String]) -> ExitCode {
    let mut only: Vec<String> = Vec::new();
    let mut json = false;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--list" => {
                print!("{}", lint::rule_table());
                return ExitCode::SUCCESS;
            }
            "--rule" => {
                let Some(id) = flags.get(i + 1) else {
                    eprintln!("xtask lint: --rule needs a rule id (see --list)");
                    return ExitCode::from(2);
                };
                if !rules::registry().iter().any(|r| r.id() == id) {
                    // Same convention as `figs scenario <id>`: exit 2
                    // with a nearest-match suggestion when one is close.
                    match rules::nearest_rule(id) {
                        Some(close) => eprintln!(
                            "xtask lint: unknown rule `{id}` — did you mean `{close}`? \
                             (see `cargo xtask lint --list`)"
                        ),
                        None => eprintln!(
                            "xtask lint: unknown rule `{id}` (see `cargo xtask lint --list`)"
                        ),
                    }
                    return ExitCode::from(2);
                }
                only.push(id.clone());
                i += 2;
            }
            "--format" => {
                match flags.get(i + 1).map(String::as_str) {
                    Some("json") => json = true,
                    Some("text") => json = false,
                    other => {
                        eprintln!("xtask lint: --format takes `json` or `text`, got {other:?}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let diags = filter_rules(lint::lint_repo(repo), &only);
    if json {
        let doc = xtask::engine::to_json(&diags);
        if let Err(e) = jsonck::validate_lint_json(&doc) {
            eprintln!("xtask lint: internal error — emitted JSON failed its own schema: {e}");
            return ExitCode::FAILURE;
        }
        println!("{doc}");
        for d in &diags {
            eprintln!("{d}");
        }
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    let denies = diags.iter().filter(|d| d.severity == Severity::Deny).count();
    if denies == 0 {
        eprintln!("xtask lint: clean ({} finding(s))", diags.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {denies} violation(s)");
        ExitCode::FAILURE
    }
}

/// The `ci` lint stage: full registry in JSON mode (exercises the same
/// serialization + schema check downstream consumers rely on).
fn run_lint_json_stage(repo: &Path) -> ExitCode {
    run_lint_cli(repo, &["--format".to_string(), "json".to_string()])
}

/// Trace one sweep cell of fig. 6 at `--quick` scale with the JSONL
/// sink attached, then validate the trace file against the schema.
/// Exercises the full telemetry path: probes → bus → sinks → trace →
/// validator.
fn run_telemetry_smoke(repo: &Path) -> ExitCode {
    let out = repo.join("target").join("telemetry-smoke.jsonl");
    let out = out.to_string_lossy().into_owned();
    let trace = run_cargo(
        repo,
        &[
            "run", "--release", "-p", "tcn-experiments", "--bin", "figs", "--", "trace", "fig6",
            "--quick", "--out", &out,
        ],
    );
    if trace != ExitCode::SUCCESS {
        return trace;
    }
    run_cargo(
        repo,
        &[
            "run", "--release", "-p", "tcn-experiments", "--bin", "figs", "--", "check-trace",
            &out,
        ],
    )
}

/// Kill-and-resume byte-identity gate. Runs a checkpointed `figs fig6
/// --quick --json` three ways in `target/resume-smoke/`:
///
/// 1. with `TCN_ABORT_AFTER_CELLS=2` — the harness must die with exit
///    code 3 after recording two cells (the simulated kill);
/// 2. with only `TCN_CHECKPOINT` — resumes from the two recorded cells
///    and completes, writing `results/fig6.json`;
/// 3. with neither — the uninterrupted control run.
///
/// The resumed and control JSON files must be byte-identical.
fn run_resume_smoke(repo: &Path) -> ExitCode {
    let dir = repo.join("target").join("resume-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("xtask: create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let ck = dir.join("fig6.ck.jsonl").to_string_lossy().into_owned();
    let figs = |envs: &[(&str, &str)], expect: i32| -> bool {
        let mut cmd = Command::new("cargo");
        cmd.args([
            "run", "--release", "-p", "tcn-experiments", "--bin", "figs", "--", "fig6",
            "--quick", "--json",
        ])
        .current_dir(&dir)
        .env_remove("TCN_CHECKPOINT")
        .env_remove("TCN_ABORT_AFTER_CELLS");
        for (k, v) in envs {
            cmd.env(k, v);
        }
        match cmd.status() {
            Ok(s) if s.code() == Some(expect) => true,
            Ok(s) => {
                eprintln!("xtask: figs fig6 exited {s}, expected code {expect}");
                false
            }
            Err(e) => {
                eprintln!("xtask: failed to spawn cargo: {e}");
                false
            }
        }
    };
    // 1. Simulated kill after two newly-completed cells.
    if !figs(&[("TCN_CHECKPOINT", &ck), ("TCN_ABORT_AFTER_CELLS", "2")], 3) {
        return ExitCode::FAILURE;
    }
    // 2. Resume from the checkpoint to completion.
    if !figs(&[("TCN_CHECKPOINT", &ck)], 0) {
        return ExitCode::FAILURE;
    }
    let json = dir.join("results").join("fig6.json");
    let resumed = match std::fs::read(&json) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask: read {}: {e}", json.display());
            return ExitCode::FAILURE;
        }
    };
    // 3. Uninterrupted control run.
    if !figs(&[], 0) {
        return ExitCode::FAILURE;
    }
    let control = match std::fs::read(&json) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask: read {}: {e}", json.display());
            return ExitCode::FAILURE;
        }
    };
    if resumed == control {
        eprintln!("xtask: resumed sweep is byte-identical to the control run");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask: resumed sweep differs from the uninterrupted control \
             ({} vs {} bytes) — checkpoint/resume broke byte-identity",
            resumed.len(),
            control.len()
        );
        ExitCode::FAILURE
    }
}

/// Run two named chaos scenarios at `--quick` scale with the JSONL
/// telemetry sink attached, validating each trace against the schema.
/// Exercises the scenario parser, the engine's timed `NetMutation`
/// scheduling, and the telemetry path end to end.
fn run_scenario_smoke(repo: &Path) -> ExitCode {
    for id in ["quiet-baseline", "incast-storm"] {
        let out = repo.join("target").join(format!("scenario-smoke-{id}.jsonl"));
        let out = out.to_string_lossy().into_owned();
        let run = run_cargo(
            repo,
            &[
                "run", "--release", "-p", "tcn-experiments", "--bin", "figs", "--", "scenario",
                id, "--quick", "--trace-out", &out,
            ],
        );
        if run != ExitCode::SUCCESS {
            return run;
        }
        let check = run_cargo(
            repo,
            &[
                "run", "--release", "-p", "tcn-experiments", "--bin", "figs", "--", "check-trace",
                &out,
            ],
        );
        if check != ExitCode::SUCCESS {
            return check;
        }
    }
    ExitCode::SUCCESS
}

/// Run the mixed-tenant congestion-control figure (`figs mixed`) at
/// `--quick` scale with the JSONL telemetry sink attached, then
/// validate the trace against the schema. One WFQ port shared by
/// DCTCP, CUBIC and BBR tenants exercises the whole pluggable-CC
/// surface: per-flow controller selection, the ECN-capable/Not-ECT
/// split at the switch, and the CC-state telemetry events.
fn run_cc_smoke(repo: &Path) -> ExitCode {
    let out = repo.join("target").join("cc-smoke.jsonl");
    let out = out.to_string_lossy().into_owned();
    let run = run_cargo(
        repo,
        &[
            "run", "--release", "-p", "tcn-experiments", "--bin", "figs", "--", "mixed",
            "--quick", "--trace-out", &out,
        ],
    );
    if run != ExitCode::SUCCESS {
        return run;
    }
    run_cargo(
        repo,
        &[
            "run", "--release", "-p", "tcn-experiments", "--bin", "figs", "--", "check-trace",
            &out,
        ],
    )
}

/// Run the scenario fuzzer over eight fixed seeds expecting a clean
/// exit: the generator only emits survivable chaos, so a failing seed
/// means a system bug (the fuzzer will have left a shrunk repro in
/// `results/quarantine/`). The env knobs are cleared so an operator's
/// `TCN_FUZZ_*` settings cannot widen or narrow the gate.
fn run_fuzz_smoke(repo: &Path) -> ExitCode {
    let mut cmd = Command::new("cargo");
    cmd.args([
        "run", "--release", "-p", "tcn-experiments", "--bin", "figs", "--", "fuzz", "--seeds",
        "8",
    ])
    .current_dir(repo)
    .env_remove("TCN_FUZZ_SEEDS")
    .env_remove("TCN_FUZZ_STEP_BUDGET");
    match cmd.status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(status) => {
            eprintln!("xtask: `figs fuzz --seeds 8` exited with {status}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: failed to spawn cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Hybrid-equivalence gate. Runs `figs fig6 --quick --json` twice in
/// `target/hybrid-smoke/` — once packet-level, once with
/// `TCN_HYBRID=1` — and requires the two `results/fig6.json`
/// documents to report matching summary statistics: an identical cell
/// grid (scheme, load), identical flow and completion counts, an
/// identical quarantine list, and mean FCTs that stay close.
///
/// Why toleranced and not byte-equal: the fluid recurrence reproduces
/// FIFO service to the picosecond
/// (`fluid_recurrence_is_exact_without_contention` covers the
/// bit-exact claim), but eliding per-packet NIC events allocates
/// arrival sequence numbers at enqueue rather than departure, so
/// same-instant ties at a congested switch resolve differently and
/// the run's chaotic dynamics re-roll. Mean FCTs over hundreds of
/// flows absorb that (observed ≲7% at `--quick` scale, gated at 25%
/// per cell / 10% on the grid-wide mean drift); extreme order
/// statistics (p99, per-cell timeout and drop counts) do not, and are
/// deliberately not gated — a real fluid bug (wrong rate, lost or
/// duplicated bytes) shows up as missing completions or a uniformly
/// biased mean, both of which this gate catches.
fn run_hybrid_smoke(repo: &Path) -> ExitCode {
    let dir = repo.join("target").join("hybrid-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("xtask: create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let figs = |hybrid: bool| -> bool {
        let mut cmd = Command::new("cargo");
        cmd.args([
            "run", "--release", "-p", "tcn-experiments", "--bin", "figs", "--", "fig6",
            "--quick", "--json",
        ])
        .current_dir(&dir)
        .env_remove("TCN_HYBRID")
        .env_remove("TCN_DISPATCH");
        if hybrid {
            cmd.env("TCN_HYBRID", "1");
        }
        match cmd.status() {
            Ok(s) if s.success() => true,
            Ok(s) => {
                eprintln!("xtask: figs fig6 (hybrid = {hybrid}) exited {s}");
                false
            }
            Err(e) => {
                eprintln!("xtask: failed to spawn cargo: {e}");
                false
            }
        }
    };
    let json = dir.join("results").join("fig6.json");
    let read = |label: &str| -> Option<String> {
        match std::fs::read_to_string(&json) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("xtask: read {} ({label}): {e}", json.display());
                None
            }
        }
    };
    if !figs(false) {
        return ExitCode::FAILURE;
    }
    let Some(packet) = read("packet run") else {
        return ExitCode::FAILURE;
    };
    if !figs(true) {
        return ExitCode::FAILURE;
    }
    let Some(hybrid) = read("hybrid run") else {
        return ExitCode::FAILURE;
    };
    match hybrid_summaries_match(&packet, &hybrid) {
        Ok(cells) => {
            eprintln!(
                "xtask: hybrid fig6 matches packet-mode summary statistics \
                 across {cells} cell(s)"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: hybrid fig6 diverged from packet mode: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Cell-by-cell comparison for [`run_hybrid_smoke`]; returns the cell
/// count on success. Grid identity is exact; continuous statistics are
/// toleranced (see the caller's doc comment for why).
fn hybrid_summaries_match(packet: &str, hybrid: &str) -> Result<usize, String> {
    use xtask::jsonck::Json;
    let p = jsonck::parse(packet).map_err(|e| format!("packet run JSON: {e}"))?;
    let h = jsonck::parse(hybrid).map_err(|e| format!("hybrid run JSON: {e}"))?;
    if p.get("quarantined") != h.get("quarantined") {
        return Err("quarantine lists differ".into());
    }
    let cells = |doc: &Json, tag: &str| match doc.get("cells") {
        Some(Json::Arr(c)) => Ok(c.clone()),
        _ => Err(format!("{tag} run has no `cells` array")),
    };
    let (pc, hc) = (cells(&p, "packet")?, cells(&h, "hybrid")?);
    if pc.len() != hc.len() {
        return Err(format!("cell grids differ: {} vs {} cells", pc.len(), hc.len()));
    }
    let num = |cell: &Json, key: &str| match cell.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        _ => Err(format!("cell missing numeric `{key}`")),
    };
    let mut drift_sum = 0.0;
    for (i, (a, b)) in pc.iter().zip(&hc).enumerate() {
        for key in ["scheme", "load", "flows", "completed"] {
            if a.get(key) != b.get(key) {
                return Err(format!("cell {i}: `{key}` differs ({:?} vs {:?})", a.get(key), b.get(key)));
            }
        }
        for key in ["overall_avg_us", "small_avg_us", "large_avg_us"] {
            let (x, y) = (num(a, key)?, num(b, key)?);
            let scale = x.abs().max(y.abs());
            let rel = if scale > 0.0 { (x - y).abs() / scale } else { 0.0 };
            if rel > 0.25 {
                return Err(format!("cell {i}: `{key}` off by >25% ({x} vs {y})"));
            }
            if key == "overall_avg_us" {
                drift_sum += rel;
            }
        }
    }
    let mean_drift = drift_sum / pc.len().max(1) as f64;
    if mean_drift > 0.10 {
        return Err(format!(
            "grid-wide mean `overall_avg_us` drift {:.1}% exceeds 10% — \
             the fluid fast path is biasing mean FCTs",
            mean_drift * 100.0
        ));
    }
    Ok(pc.len())
}

fn run_bench_smoke(repo: &Path) -> ExitCode {
    run_cargo(
        repo,
        &[
            "run", "--release", "-p", "tcn-bench", "--bin", "perfbench", "--", "--smoke",
        ],
    )
}

fn run_cargo(repo: &Path, args: &[&str]) -> ExitCode {
    match Command::new("cargo").args(args).current_dir(repo).status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(status) => {
            eprintln!("xtask: `cargo {}` exited with {status}", args.join(" "));
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: failed to spawn cargo: {e}");
            ExitCode::FAILURE
        }
    }
}
