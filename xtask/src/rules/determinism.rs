//! The determinism rule family: the byte-identity discipline that makes
//! a sweep reproducible from `(config, seed)` alone. Each rule names one
//! way nondeterminism historically sneaks into a DES — hash-order
//! iteration, ambient threads, ambient entropy, wall clocks, and raw
//! arithmetic on tick counts outside the checked `Time` sanctuary.

use crate::engine::{Diagnostic, Rule, Scope, SourceFile};
use crate::lex::TokenKind;
use crate::rules::{
    diag_at, every_file, outside_time_sanctuary, seq_at, thread_scope, wallclock_scope, Pat,
};

/// `no-float-time`: raw tick counts must not be cast to floats outside
/// the `Time` module — use `as_secs_f64()` / `as_us_f64()` which carry
/// their unit in the name. Token pattern: `. as_xx ( ) as f64|f32`.
pub struct NoFloatTime;

const TICK_ACCESSORS: &[&str] = &["as_ps", "as_ns", "as_us", "as_ms"];

impl Rule for NoFloatTime {
    fn id(&self) -> &'static str {
        "no-float-time"
    }
    fn summary(&self) -> &'static str {
        "`.as_ps() as f64`-style raw picosecond float casts — use the named `Time` accessors"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file except `sim/src/time.rs`", applies: outside_time_sanctuary }
    }
    fn exempts_tests(&self) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = &file.code;
        for i in 0..code.len() {
            for m in TICK_ACCESSORS {
                for ty in ["f64", "f32"] {
                    let pat = [
                        Pat::Pu("."),
                        Pat::Id(m),
                        Pat::Pu("("),
                        Pat::Pu(")"),
                        Pat::Id("as"),
                        Pat::Id(ty),
                    ];
                    if seq_at(code, i, &pat) {
                        out.push(diag_at(
                            file,
                            &code[i],
                            self.id(),
                            format!(
                                "`.{m}() as {ty}` casts a raw tick count to float; use \
                                 Time::as_secs_f64()/as_us_f64() (only sim/src/time.rs \
                                 may do raw conversions)"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// `no-wallclock`: host-clock reads outside the sanctuaries. Applies to
/// test code too — tests must be as deterministic as the simulator they
/// check.
pub struct NoWallclock;

impl Rule for NoWallclock {
    fn id(&self) -> &'static str {
        "no-wallclock"
    }
    fn summary(&self) -> &'static str {
        "host-clock reads (`std::time::Instant`, `SystemTime`) — simulation code runs on virtual `Time` only"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file except `crates/bench/`, `xtask/`", applies: wallclock_scope }
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = &file.code;
        let pats: &[(&[Pat], &str)] = &[
            (
                &[Pat::Id("std"), Pat::Pu("::"), Pat::Id("time"), Pat::Pu("::"), Pat::Id("Instant")],
                "std::time::Instant",
            ),
            (&[Pat::Id("Instant"), Pat::Pu("::"), Pat::Id("now")], "Instant::now"),
            (&[Pat::Id("SystemTime")], "SystemTime"),
        ];
        for i in 0..code.len() {
            for (pat, needle) in pats {
                if seq_at(code, i, pat) {
                    out.push(diag_at(
                        file,
                        &code[i],
                        self.id(),
                        format!(
                            "`{needle}` reads the host clock; simulation code runs on \
                             virtual Time only (wall-clock timing belongs in \
                             crates/bench or xtask)"
                        ),
                    ));
                }
            }
        }
    }
}

/// `no-hash-iter`: `HashMap` / `HashSet` anywhere in the repo. Their
/// iteration order depends on `RandomState`'s per-process seed, so any
/// loop, `extend`, or debug dump over one is a nondeterminism hazard —
/// and at token level we cannot see which uses iterate, so the type
/// itself is banned in favour of `BTreeMap` / `BTreeSet` (deterministic
/// order, and every key this repo indexes by is `Ord`). Tests get no
/// exemption: a test that observes hash order flakes.
pub struct NoHashIter;

impl Rule for NoHashIter {
    fn id(&self) -> &'static str {
        "no-hash-iter"
    }
    fn summary(&self) -> &'static str {
        "`HashMap` / `HashSet` (hash-order iteration is seeded per process) — use `BTreeMap` / `BTreeSet`"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file (tests included)", applies: every_file }
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for t in &file.code {
            for name in ["HashMap", "HashSet"] {
                if t.is_ident(name) {
                    out.push(diag_at(
                        file,
                        t,
                        self.id(),
                        format!(
                            "`{name}` iterates in RandomState order — use \
                             BTreeMap/BTreeSet (deterministic, Ord keys), or append \
                             `lint:allow(no-hash-iter): <why order is provably \
                             unobservable>`"
                        ),
                    ));
                }
            }
        }
    }
}

/// `no-thread-outside-runner`: `std::thread` use outside the sweep
/// runner. Threads reorder everything they touch; the runner is the one
/// module engineered to thread deterministically (canonical merge
/// order, byte-identical at any worker count), so all parallelism must
/// route through it.
pub struct NoThreadOutsideRunner;

impl Rule for NoThreadOutsideRunner {
    fn id(&self) -> &'static str {
        "no-thread-outside-runner"
    }
    fn summary(&self) -> &'static str {
        "`std::thread` use outside the deterministic sweep runner — route parallelism through it"
    }
    fn scope(&self) -> Scope {
        Scope {
            desc: "every `.rs` file except `experiments/src/runner.rs`, `crates/bench/`, `xtask/`",
            applies: thread_scope,
        }
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = &file.code;
        let pats: &[(&[Pat], &str)] = &[
            (&[Pat::Id("std"), Pat::Pu("::"), Pat::Id("thread")], "std::thread"),
            (&[Pat::Id("thread"), Pat::Pu("::"), Pat::Id("spawn")], "thread::spawn"),
            (&[Pat::Id("thread"), Pat::Pu("::"), Pat::Id("scope")], "thread::scope"),
            (&[Pat::Id("thread"), Pat::Pu("::"), Pat::Id("Builder")], "thread::Builder"),
        ];
        for i in 0..code.len() {
            for (pat, needle) in pats {
                if seq_at(code, i, pat) {
                    out.push(diag_at(
                        file,
                        &code[i],
                        self.id(),
                        format!(
                            "`{needle}` outside the sweep runner: threads reorder \
                             events and merges — route parallelism through \
                             experiments::runner (deterministic at any worker count)"
                        ),
                    ));
                }
            }
        }
    }
}

/// `no-ambient-entropy`: randomness sources the seed does not control.
/// Every random draw in this repo must come from the run's seeded
/// `Rng` (and its derived sub-streams) so that `(config, seed)` fully
/// determines the output bytes.
pub struct NoAmbientEntropy;

const ENTROPY_IDENTS: &[&str] = &[
    "RandomState",
    "DefaultHasher",
    "thread_rng",
    "from_entropy",
    "getrandom",
    "OsRng",
];

impl Rule for NoAmbientEntropy {
    fn id(&self) -> &'static str {
        "no-ambient-entropy"
    }
    fn summary(&self) -> &'static str {
        "ambient randomness (`RandomState`, `thread_rng`, `OsRng`, …) — draw from the run's seeded `Rng`"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file (tests included)", applies: every_file }
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for t in &file.code {
            for name in ENTROPY_IDENTS {
                if t.is_ident(name) {
                    out.push(diag_at(
                        file,
                        t,
                        self.id(),
                        format!(
                            "`{name}` is entropy the seed does not control — derive \
                             randomness from the run's `Rng::stream` sub-streams so \
                             `(config, seed)` determines every byte"
                        ),
                    ));
                }
            }
        }
    }
}

/// `no-raw-tick-arith`: `+`/`-` on raw `.as_ps()`-style tick counts
/// outside the `Time` sanctuary. Raw u64 arithmetic wraps silently in
/// release builds; `Time`'s own operators are overflow-checked, so the
/// add/subtract must happen on `Time` and the conversion at the edge.
/// Scaling (`*`, `/`, `%` — quantization, rate math) is left alone.
pub struct NoRawTickArith;

const ARITH: &[&str] = &["+", "-", "+=", "-="];

impl Rule for NoRawTickArith {
    fn id(&self) -> &'static str {
        "no-raw-tick-arith"
    }
    fn summary(&self) -> &'static str {
        "`+`/`-` on a raw `.as_ps()` tick count — do the arithmetic on `Time` (checked), convert at the edge"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file except `sim/src/time.rs`", applies: outside_time_sanctuary }
    }
    fn exempts_tests(&self) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = &file.code;
        for i in 0..code.len() {
            let is_call = TICK_ACCESSORS.iter().any(|m| {
                seq_at(code, i, &[Pat::Pu("."), Pat::Id(m), Pat::Pu("("), Pat::Pu(")")])
            });
            if !is_call {
                continue;
            }
            let accessor = &code[i + 1].text;
            // `….as_ps() + …` / `….as_ps() - …`
            let after = code.get(i + 4);
            let flagged_after =
                after.is_some_and(|t| t.kind == TokenKind::Punct && ARITH.contains(&t.text.as_str()));
            // `… + x.as_ps()`: walk back over the receiver chain
            // (idents, field/path separators, balanced groups) to the
            // operator that feeds it.
            let flagged_before = {
                let start = receiver_start(code, i);
                start > 0
                    && code[start - 1].kind == TokenKind::Punct
                    && ARITH.contains(&code[start - 1].text.as_str())
            };
            if flagged_after || flagged_before {
                out.push(diag_at(
                    file,
                    &code[i],
                    self.id(),
                    format!(
                        "`+`/`-` on a raw `.{accessor}()` tick count wraps silently in \
                         release builds — do the arithmetic on `Time` (checked, in \
                         sim/src/time.rs) and convert at the edge, or append \
                         `lint:allow(no-raw-tick-arith): <why>`"
                    ),
                ));
            }
        }
    }
}

/// Index where the receiver expression of the method call whose `.`
/// sits at `code[dot]` begins: walks back over identifiers, `.`/`::`
/// separators, and balanced `(…)` / `[…]` groups.
fn receiver_start(code: &[crate::lex::Token], dot: usize) -> usize {
    let mut k = dot;
    while k > 0 {
        let t = &code[k - 1];
        if t.kind == TokenKind::Ident || t.is_punct(".") || t.is_punct("::") {
            k -= 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            let (open, close) = if t.is_punct(")") { ("(", ")") } else { ("[", "]") };
            let mut depth = 0i64;
            let mut j = k - 1;
            loop {
                if code[j].is_punct(close) {
                    depth += 1;
                } else if code[j].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            k = j;
        } else {
            break;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use std::path::PathBuf;

    fn lint_one(path: &str, src: &str, rule: Box<dyn Rule>) -> Vec<Diagnostic> {
        run(
            &[SourceFile::new(PathBuf::from(path), src.to_string())],
            &[rule],
        )
    }

    #[test]
    fn float_time_cast_is_caught_and_named_accessor_is_clean() {
        let d = lint_one(
            "crates/net/src/x.rs",
            "pub fn f(t: Time) -> f64 {\n    t.as_ps() as f64\n}\n",
            Box::new(NoFloatTime),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert!(lint_one(
            "crates/net/src/x.rs",
            "pub fn f(t: Time) -> f64 {\n    t.as_us_f64()\n}\n",
            Box::new(NoFloatTime)
        )
        .is_empty());
    }

    #[test]
    fn wallclock_is_caught_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::SystemTime::now(); }\n}\n";
        let d = lint_one("crates/net/src/x.rs", src, Box::new(NoWallclock));
        assert_eq!(d.len(), 1, "tests get no wallclock exemption");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn wallclock_full_path_dedupes_to_one_diag() {
        let src = "pub fn f() {\n    let t0 = std::time::Instant::now();\n    let _ = t0;\n}\n";
        let d = lint_one("crates/net/src/x.rs", src, Box::new(NoWallclock));
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn wallclock_in_comment_or_string_is_clean() {
        let src = "// Instant::now is banned\nlet s = \"std::time::Instant\";\n";
        assert!(lint_one("crates/net/src/x.rs", src, Box::new(NoWallclock)).is_empty());
    }

    #[test]
    fn hash_map_is_caught_in_tests_too() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let d = lint_one("crates/net/src/x.rs", src, Box::new(NoHashIter));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("BTreeMap"));
    }

    #[test]
    fn btree_map_and_hash_in_string_are_clean() {
        let src = "use std::collections::BTreeMap;\nlet s = \"HashMap\"; // HashMap in a comment\n";
        assert!(lint_one("crates/net/src/x.rs", src, Box::new(NoHashIter)).is_empty());
    }

    #[test]
    fn thread_spawn_is_caught_outside_runner_only() {
        let src = "pub fn f() {\n    std::thread::spawn(|| {});\n}\n";
        let d = lint_one("crates/net/src/x.rs", src, Box::new(NoThreadOutsideRunner));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(lint_one(
            "crates/experiments/src/runner.rs",
            src,
            Box::new(NoThreadOutsideRunner)
        )
        .is_empty());
        assert!(lint_one("crates/bench/src/lib.rs", src, Box::new(NoThreadOutsideRunner)).is_empty());
    }

    #[test]
    fn ambient_entropy_idents_are_caught() {
        for (frag, name) in [
            ("use std::collections::hash_map::RandomState;", "RandomState"),
            ("let h = DefaultHasher::new();", "DefaultHasher"),
            ("let r = thread_rng();", "thread_rng"),
        ] {
            let d = lint_one(
                "crates/net/src/x.rs",
                &format!("{frag}\n"),
                Box::new(NoAmbientEntropy),
            );
            assert_eq!(d.len(), 1, "{name}");
            assert!(d[0].message.contains(name), "{}", d[0].message);
        }
    }

    #[test]
    fn raw_tick_add_is_caught_in_both_directions() {
        let d = lint_one(
            "crates/net/src/x.rs",
            "let x = t.as_ps() + 1;\n",
            Box::new(NoRawTickArith),
        );
        assert_eq!(d.len(), 1, "{d:?}");
        let d = lint_one(
            "crates/net/src/x.rs",
            "let x = 1 + self.profile.jitter.as_ps();\n",
            Box::new(NoRawTickArith),
        );
        assert_eq!(d.len(), 1, "operator feeding the receiver: {d:?}");
        let d = lint_one(
            "crates/net/src/x.rs",
            "let x = f(a, b).as_ps() - g();\n",
            Box::new(NoRawTickArith),
        );
        assert_eq!(d.len(), 1, "call receiver: {d:?}");
    }

    #[test]
    fn tick_scaling_and_comparisons_are_clean() {
        for src in [
            "let q = Time::from_ps(t.as_ps() / w * w);\n",
            "let ok = a.as_ps() >= b.as_ps();\n",
            "let v = t.as_ps();\n",
            "let s = t.as_secs_f64() + 1.0;\n",
        ] {
            let d = lint_one("crates/net/src/x.rs", src, Box::new(NoRawTickArith));
            assert!(d.is_empty(), "{src}: {d:?}");
        }
    }

    #[test]
    fn raw_tick_arith_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = x.as_ps() + 1; }\n}\n";
        assert!(lint_one("crates/net/src/x.rs", src, Box::new(NoRawTickArith)).is_empty());
    }

    #[test]
    fn time_sanctuary_is_out_of_scope_for_tick_rules() {
        let src = "let x = t.as_ps() + 1;\nlet y = t.as_ps() as f64;\n";
        assert!(lint_one("crates/sim/src/time.rs", src, Box::new(NoRawTickArith)).is_empty());
        assert!(lint_one("crates/sim/src/time.rs", src, Box::new(NoFloatTime)).is_empty());
    }
}
