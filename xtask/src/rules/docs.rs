//! Provenance / taxonomy documentation rules: AQMs must cite the paper
//! section they implement, fault kinds must name the real-world failure
//! they model, and the `TcnError` taxonomy must stay exhaustively
//! tagged. These are the rules that need the lexer's comment trivia —
//! a substring scan cannot ask "is there a doc comment above this
//! token".

use crate::engine::{Diagnostic, Rule, Scope, SourceFile};
use crate::lex::{Token, TokenKind};
use crate::rules::{aqm_scope, diag_at, every_file, seq_at, transport_scope, Pat};

/// Nearest-first doc comments directly above `tokens[idx]`, skipping
/// attribute groups (`#[…]`, `#![…]`), visibility modifiers
/// (`pub`, `pub(crate)`), and plain (non-doc) comments on the walk.
fn docs_above<'a>(tokens: &'a [Token], idx: usize) -> Vec<&'a Token> {
    let mut out = Vec::new();
    let mut k = idx;
    while k > 0 {
        let t = &tokens[k - 1];
        if t.is_doc_comment() {
            out.push(t);
            k -= 1;
        } else if t.is_comment()
            || t.is_ident("pub")
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("in")
            || t.is_punct("(")
            || t.is_punct(")")
        {
            k -= 1;
        } else if t.is_punct("]") {
            // Skip a balanced attribute group back to its `#`.
            let mut depth = 0i64;
            let mut j = k - 1;
            loop {
                if tokens[j].is_punct("]") {
                    depth += 1;
                } else if tokens[j].is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j > 0 && tokens[j - 1].is_punct("!") {
                j -= 1;
            }
            if j > 0 && tokens[j - 1].is_punct("#") {
                k = j - 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    out
}

/// One enum variant found by [`enum_variants`].
struct VariantInfo {
    name: String,
    line: usize,
    col: usize,
    /// True when the nearest doc comment above carries >= 10 chars of
    /// prose (a `/// Loss.` stub is as useless as nothing).
    documented: bool,
    /// The variant's full doc prose, top line first (rules that look
    /// for markers must see every line, not just the nearest).
    doc: String,
}

/// The variants of `enum <name>` in this file, or `None` when the file
/// does not define it. Brace-tracks the token stream, so braces in
/// strings or comments never skew the walk.
fn enum_variants(file: &SourceFile, name: &str) -> Option<(usize, Vec<VariantInfo>)> {
    let toks = &file.tokens;
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    // Find `enum <name>` among significant tokens.
    let pos = sig.windows(2).position(|w| {
        toks[w[0]].is_ident("enum") && toks[w[1]].is_ident(name)
    })?;
    let enum_line = toks[sig[pos]].line;
    // Advance to the opening brace.
    let mut s = pos + 2;
    while s < sig.len() && !toks[sig[s]].is_punct("{") {
        if toks[sig[s]].is_punct(";") {
            return Some((enum_line, Vec::new()));
        }
        s += 1;
    }
    let mut depth = 0i64;
    let mut variants = Vec::new();
    let mut prev: Option<&Token> = None;
    for &ti in &sig[s..] {
        let t = &toks[ti];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && t.kind == TokenKind::Ident
            && t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && prev.is_some_and(|p| p.is_punct("{") || p.is_punct(",") || p.is_punct("]"))
        {
            let docs = docs_above(toks, ti);
            let documented = docs.first().is_some_and(|d| d.doc_text().len() >= 10);
            // `docs_above` walks upward, so reverse for reading order.
            let doc = docs
                .iter()
                .rev()
                .map(|d| d.doc_text())
                .collect::<Vec<_>>()
                .join("\n");
            variants.push(VariantInfo {
                name: t.text.clone(),
                line: t.line,
                col: t.col,
                documented,
                doc,
            });
        }
        prev = Some(t);
    }
    Some((enum_line, variants))
}

/// `aqm-doc-cite`: every type with an `impl Aqm for X` in this file
/// must have a `struct X` whose doc comment cites a paper section
/// (`§`). The struct is looked up in the same file — all AQMs in this
/// repo are defined beside their impl.
pub struct AqmDocCite;

impl Rule for AqmDocCite {
    fn id(&self) -> &'static str {
        "aqm-doc-cite"
    }
    fn summary(&self) -> &'static str {
        "a public AQM whose doc comment never cites a paper section (`§`)"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "`crates/core/src`, `crates/baselines/src`", applies: aqm_scope }
    }
    fn exempts_tests(&self) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = &file.code;
        for i in 0..code.len() {
            if !seq_at(code, i, &[Pat::Id("impl"), Pat::Id("Aqm"), Pat::Id("for"), Pat::AnyId]) {
                continue;
            }
            let ty = &code[i + 3].text;
            // Find `struct <ty>` in the full token stream.
            let toks = &file.tokens;
            let sig: Vec<usize> = (0..toks.len()).filter(|&k| !toks[k].is_comment()).collect();
            let Some(w) = sig.windows(2).find(|w| {
                toks[w[0]].is_ident("struct") && toks[w[1]].is_ident(ty)
            }) else {
                continue; // type defined elsewhere; out of this rule's reach
            };
            let cited = docs_above(toks, w[0])
                .iter()
                .any(|d| d.doc_text().contains('§'));
            if !cited {
                out.push(diag_at(
                    file,
                    &toks[w[0]],
                    self.id(),
                    format!(
                        "`{ty}` implements Aqm but its doc comment never cites a \
                         paper section (add a `§n.m` reference)"
                    ),
                ));
            }
        }
    }
}

/// `cc-doc-cite`: every type with an `impl CongestionControl for X` in
/// this file must have a `struct X` whose doc comment cites the RFC or
/// paper section it implements (`§`) — the same provenance discipline
/// `aqm-doc-cite` imposes on marking schemes. A congestion controller
/// is a transcription of a published algorithm; a reader auditing the
/// window arithmetic needs the section to diff against. The enum
/// dispatcher (`CcAlgo`) is out of reach by construction: the lookup
/// only finds `struct` definitions.
pub struct CcDocCite;

impl Rule for CcDocCite {
    fn id(&self) -> &'static str {
        "cc-doc-cite"
    }
    fn summary(&self) -> &'static str {
        "a congestion controller whose doc comment never cites its source RFC/paper section (`§`)"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "`crates/transport/src`", applies: transport_scope }
    }
    fn exempts_tests(&self) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = &file.code;
        for i in 0..code.len() {
            if !seq_at(
                code,
                i,
                &[Pat::Id("impl"), Pat::Id("CongestionControl"), Pat::Id("for"), Pat::AnyId],
            ) {
                continue;
            }
            let ty = &code[i + 3].text;
            // Find `struct <ty>` in the full token stream.
            let toks = &file.tokens;
            let sig: Vec<usize> = (0..toks.len()).filter(|&k| !toks[k].is_comment()).collect();
            let Some(w) = sig.windows(2).find(|w| {
                toks[w[0]].is_ident("struct") && toks[w[1]].is_ident(ty)
            }) else {
                continue; // enum dispatcher or foreign type; out of reach
            };
            let cited = docs_above(toks, w[0])
                .iter()
                .any(|d| d.doc_text().contains('§'));
            if !cited {
                out.push(diag_at(
                    file,
                    &toks[w[0]],
                    self.id(),
                    format!(
                        "`{ty}` implements CongestionControl but its doc comment \
                         never cites the RFC/paper section it transcribes (add a \
                         `§n.m` reference)"
                    ),
                ));
            }
        }
    }
}

/// `fault-kind-doc`: every variant of the `FaultKind` enum must carry a
/// doc comment naming the real-world failure mode it models (at least
/// 10 characters of prose). Fault taxonomies rot fastest: an
/// undocumented variant forces every reader back to the injection site
/// to learn what a counter means.
pub struct FaultKindDoc;

impl Rule for FaultKindDoc {
    fn id(&self) -> &'static str {
        "fault-kind-doc"
    }
    fn summary(&self) -> &'static str {
        "a `FaultKind` variant without a doc comment naming its real-world failure mode"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file", applies: every_file }
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let Some((_, variants)) = enum_variants(file, "FaultKind") else {
            return;
        };
        for v in variants.iter().filter(|v| !v.documented) {
            out.push(Diagnostic {
                file: file.path.clone(),
                line: v.line,
                col: v.col,
                rule: self.id(),
                severity: crate::engine::Severity::Deny,
                message: format!(
                    "`FaultKind::{}` has no doc comment naming the \
                     real-world failure mode it models",
                    v.name
                ),
            });
        }
    }
}

/// `exhaustive-kind-tags`: the `TcnError` taxonomy must stay stable and
/// self-describing — every variant carries a doc comment, and the
/// `kind()` method maps every variant to a string tag through an
/// explicit arm (`TcnError::X { .. } => "x"`), with no `_` wildcard
/// (which would let a new variant silently inherit someone else's tag)
/// and no duplicate tags (quarantine lists and telemetry key on them).
pub struct ExhaustiveKindTags;

impl Rule for ExhaustiveKindTags {
    fn id(&self) -> &'static str {
        "exhaustive-kind-tags"
    }
    fn summary(&self) -> &'static str {
        "a `TcnError` variant without a doc comment or without an explicit stable string tag in `kind()`"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file (fires where `enum TcnError` is defined)", applies: every_file }
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let Some((enum_line, variants)) = enum_variants(file, "TcnError") else {
            return;
        };
        for v in variants.iter().filter(|v| !v.documented) {
            out.push(Diagnostic {
                file: file.path.clone(),
                line: v.line,
                col: v.col,
                rule: self.id(),
                severity: crate::engine::Severity::Deny,
                message: format!(
                    "`TcnError::{}` needs a doc comment: the error taxonomy is \
                     the map readers navigate failures by",
                    v.name
                ),
            });
        }

        // Locate the body of `fn kind`.
        let code = &file.code;
        let Some(fnpos) = (0..code.len())
            .find(|&i| seq_at(code, i, &[Pat::Id("fn"), Pat::Id("kind"), Pat::Pu("(")]))
        else {
            out.push(Diagnostic {
                file: file.path.clone(),
                line: enum_line,
                col: 0,
                rule: self.id(),
                severity: crate::engine::Severity::Deny,
                message: "`TcnError` has no `kind()` method returning a stable \
                          machine-readable tag per variant"
                    .to_string(),
            });
            return;
        };
        let mut body_start = fnpos;
        while body_start < code.len() && !code[body_start].is_punct("{") {
            body_start += 1;
        }
        let mut depth = 0i64;
        let mut body_end = body_start;
        for (k, t) in code.iter().enumerate().skip(body_start) {
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    body_end = k;
                    break;
                }
            }
        }
        let body = &code[body_start..body_end];

        // No wildcard arm: `_ =>` anywhere in the body.
        for i in 0..body.len() {
            if seq_at(body, i, &[Pat::Id("_"), Pat::Pu("=>")]) {
                out.push(diag_at(
                    file,
                    &body[i],
                    self.id(),
                    "`kind()` must match `TcnError` variants exhaustively — a `_` \
                     arm lets a new variant silently share another's tag"
                        .to_string(),
                ));
            }
        }

        // Every variant: an explicit arm whose `=>` yields a string tag.
        let mut tags: Vec<(String, String)> = Vec::new(); // (tag, variant)
        for v in &variants {
            let arm = (0..body.len()).find(|&i| {
                (seq_at(body, i, &[Pat::Id("TcnError"), Pat::Pu("::")])
                    || seq_at(body, i, &[Pat::Id("Self"), Pat::Pu("::")]))
                    && body.get(i + 2).is_some_and(|t| t.is_ident(&v.name))
            });
            let Some(arm) = arm else {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: v.line,
                    col: v.col,
                    rule: self.id(),
                    severity: crate::engine::Severity::Deny,
                    message: format!(
                        "`TcnError::{}` has no explicit arm in `kind()` — every \
                         variant needs a stable string tag",
                        v.name
                    ),
                });
                continue;
            };
            // Scan this arm: the token after its `=>` must be a string
            // literal (the tag convention: `… => "tag",`).
            let tag = (arm..body.len())
                .find(|&i| body[i].is_punct("=>"))
                .and_then(|i| body.get(i + 1))
                .filter(|t| t.kind == TokenKind::Str);
            match tag {
                Some(t) => tags.push((t.text.clone(), v.name.clone())),
                None => out.push(Diagnostic {
                    file: file.path.clone(),
                    line: v.line,
                    col: v.col,
                    rule: self.id(),
                    severity: crate::engine::Severity::Deny,
                    message: format!(
                        "`TcnError::{}`'s `kind()` arm does not yield a string \
                         literal tag directly (`… => \"tag\"`)",
                        v.name
                    ),
                }),
            }
        }

        // Tags must be unique.
        for (i, (tag, name)) in tags.iter().enumerate() {
            if tags[..i].iter().any(|(t, _)| t == tag) {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: enum_line,
                    col: 0,
                    rule: self.id(),
                    severity: crate::engine::Severity::Deny,
                    message: format!(
                        "`TcnError::{name}` reuses the kind tag {tag} — tags key \
                         quarantine lists and telemetry, they must be unique"
                    ),
                });
            }
        }
    }
}

/// The `step:<tag>` marker inside a backticked span of a doc comment,
/// if any. Tags are kebab-case: anything else is treated as absent so
/// the diagnostic points at the malformed marker.
fn step_marker(doc: &str) -> Option<&str> {
    let start = doc.find("`step:")?;
    let rest = &doc[start + "`step:".len()..];
    let tag = &rest[..rest.find('`')?];
    (!tag.is_empty() && tag.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'))
        .then_some(tag)
}

/// `scenario-step-doc`: every variant of the scenario DSL's
/// `StepMutation` enum must carry a doc comment with a unique
/// backticked `step:<tag>` marker — the same tag discipline
/// `exhaustive-kind-tags` imposes on the error taxonomy. The tags name
/// mutation kinds in scenario files, fuzzer repros, and the
/// reconfiguration audit log, so a variant without one (or two variants
/// sharing one) breaks the map from a step on disk to the code that
/// applies it.
pub struct ScenarioStepDoc;

impl Rule for ScenarioStepDoc {
    fn id(&self) -> &'static str {
        "scenario-step-doc"
    }
    fn summary(&self) -> &'static str {
        "a `StepMutation` variant whose doc comment lacks a unique backticked `step:<tag>` marker"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file (fires where `enum StepMutation` is defined)", applies: every_file }
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let Some((enum_line, variants)) = enum_variants(file, "StepMutation") else {
            return;
        };
        let mut tags: Vec<(&str, &str)> = Vec::new(); // (tag, variant)
        for v in &variants {
            // Judge the whole doc block, not just the nearest line —
            // a marker plus prose often wraps across lines.
            if v.doc.len() < 10 {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: v.line,
                    col: v.col,
                    rule: self.id(),
                    severity: crate::engine::Severity::Deny,
                    message: format!(
                        "`StepMutation::{}` needs a doc comment describing the \
                         chaos step it applies",
                        v.name
                    ),
                });
                continue;
            }
            match step_marker(&v.doc) {
                Some(tag) => tags.push((tag, &v.name)),
                None => out.push(Diagnostic {
                    file: file.path.clone(),
                    line: v.line,
                    col: v.col,
                    rule: self.id(),
                    severity: crate::engine::Severity::Deny,
                    message: format!(
                        "`StepMutation::{}`'s doc comment carries no backticked \
                         `step:<tag>` marker naming its mutation kind",
                        v.name
                    ),
                }),
            }
        }
        for (i, (tag, name)) in tags.iter().enumerate() {
            if tags[..i].iter().any(|(t, _)| t == tag) {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: enum_line,
                    col: 0,
                    rule: self.id(),
                    severity: crate::engine::Severity::Deny,
                    message: format!(
                        "`StepMutation::{name}` reuses the step tag `{tag}` — tags \
                         key scenario files and fuzzer repros, they must be unique"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use std::path::PathBuf;

    fn lint_one(path: &str, src: &str, rule: Box<dyn Rule>) -> Vec<Diagnostic> {
        run(
            &[SourceFile::new(PathBuf::from(path), src.to_string())],
            &[rule],
        )
    }

    #[test]
    fn aqm_without_citation_is_caught() {
        let src = "/// A marking scheme with no citation.\npub struct Foo;\n\nimpl Aqm for Foo {\n}\n";
        let d = lint_one("crates/baselines/src/x.rs", src, Box::new(AqmDocCite));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Foo"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn aqm_with_citation_above_derive_is_clean() {
        let src = "/// Cited scheme (§3.2).\n#[derive(Debug, Clone)]\npub struct Foo;\n\nimpl Aqm for Foo {\n}\n";
        assert!(lint_one("crates/baselines/src/x.rs", src, Box::new(AqmDocCite)).is_empty());
    }

    #[test]
    fn cc_without_citation_is_caught() {
        let src = "/// A window law described nowhere.\npub struct FooCc {\n    cwnd: f64,\n}\n\nimpl CongestionControl for FooCc {\n}\n";
        let d = lint_one("crates/transport/src/cc.rs", src, Box::new(CcDocCite));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("FooCc"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn cc_with_citation_is_clean() {
        let src = "/// Cubic window growth (RFC 8312 §4.1).\n#[derive(Debug)]\npub struct FooCc;\n\nimpl CongestionControl for FooCc {\n}\n";
        assert!(lint_one("crates/transport/src/cc.rs", src, Box::new(CcDocCite)).is_empty());
    }

    #[test]
    fn cc_enum_dispatcher_is_out_of_reach() {
        // `CcAlgo` is an enum, not a struct: the lookup finds nothing
        // and the rule stays silent rather than demanding a citation
        // on plumbing.
        let src = "pub enum CcAlgo {\n    Dctcp(DctcpCc),\n}\n\nimpl CongestionControl for CcAlgo {\n}\n";
        assert!(lint_one("crates/transport/src/cc.rs", src, Box::new(CcDocCite)).is_empty());
    }

    #[test]
    fn cc_rule_is_scoped_to_transport() {
        let src = "pub struct FooCc;\n\nimpl CongestionControl for FooCc {\n}\n";
        assert!(lint_one("crates/net/src/x.rs", src, Box::new(CcDocCite)).is_empty());
    }

    #[test]
    fn undocumented_fault_kind_variant_is_caught() {
        let src = "pub enum FaultKind {\n    /// A flaky optic silently eating frames on the wire.\n    Loss,\n    Corrupt,\n}\n";
        let d = lint_one("crates/sim/src/x.rs", src, Box::new(FaultKindDoc));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("Corrupt"));
    }

    #[test]
    fn trivial_fault_kind_doc_is_caught() {
        let src = "pub enum FaultKind {\n    /// Loss.\n    Loss,\n}\n";
        let d = lint_one("crates/sim/src/x.rs", src, Box::new(FaultKindDoc));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn fault_kind_struct_variant_fields_and_other_enums_are_ignored() {
        let src = "pub enum FaultKind {\n    /// Maintenance pulling the wrong cable: the link goes dark.\n    LinkDown {\n        Link: u32,\n    },\n}\npub enum Other { Undocumented }\n";
        assert!(lint_one("crates/sim/src/x.rs", src, Box::new(FaultKindDoc)).is_empty());
    }

    #[test]
    fn fault_kind_tuple_variant_payload_is_not_a_variant() {
        let src = "pub enum FaultKind {\n    /// Bit errors past the FEC budget on the wire.\n    Corrupt(CorruptSpec),\n}\n";
        assert!(lint_one("crates/sim/src/x.rs", src, Box::new(FaultKindDoc)).is_empty());
    }

    const GOOD_TCN_ERROR: &str = "pub enum TcnError {\n    /// The topology cannot route between two hosts.\n    Topology { detail: String },\n    /// The liveness watchdog aborted the run.\n    Stall(StallReport),\n}\nimpl TcnError {\n    pub fn kind(&self) -> &'static str {\n        match self {\n            TcnError::Topology { .. } => \"topology\",\n            TcnError::Stall(_) => \"stall\",\n        }\n    }\n}\n";

    #[test]
    fn complete_tcn_error_taxonomy_is_clean() {
        let d = lint_one("crates/core/src/x.rs", GOOD_TCN_ERROR, Box::new(ExhaustiveKindTags));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_kind_arm_is_caught() {
        let src = GOOD_TCN_ERROR.replace("            TcnError::Stall(_) => \"stall\",\n", "");
        let d = lint_one("crates/core/src/x.rs", &src, Box::new(ExhaustiveKindTags));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Stall"), "{}", d[0].message);
        assert!(d[0].message.contains("stable string tag"));
    }

    #[test]
    fn wildcard_arm_is_caught() {
        let src = GOOD_TCN_ERROR.replace(
            "TcnError::Stall(_) => \"stall\",",
            "_ => \"stall\",",
        );
        let d = lint_one("crates/core/src/x.rs", &src, Box::new(ExhaustiveKindTags));
        assert!(
            d.iter().any(|d| d.message.contains("`_` arm")),
            "{d:?}"
        );
    }

    #[test]
    fn undocumented_error_variant_is_caught() {
        let src = GOOD_TCN_ERROR.replace("    /// The liveness watchdog aborted the run.\n", "");
        let d = lint_one("crates/core/src/x.rs", &src, Box::new(ExhaustiveKindTags));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("doc comment"));
    }

    #[test]
    fn duplicate_tags_are_caught() {
        let src = GOOD_TCN_ERROR.replace("\"stall\"", "\"topology\"");
        let d = lint_one("crates/core/src/x.rs", &src, Box::new(ExhaustiveKindTags));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("reuses"), "{}", d[0].message);
    }

    #[test]
    fn missing_kind_method_is_caught() {
        let src = "pub enum TcnError {\n    /// The topology cannot route between two hosts.\n    Topology { detail: String },\n}\n";
        let d = lint_one("crates/core/src/x.rs", src, Box::new(ExhaustiveKindTags));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no `kind()`"), "{}", d[0].message);
    }

    #[test]
    fn files_without_tcn_error_are_out_of_scope() {
        assert!(lint_one(
            "crates/net/src/x.rs",
            "pub enum Other { A, B }\n",
            Box::new(ExhaustiveKindTags)
        )
        .is_empty());
    }

    const GOOD_STEP_MUTATION: &str = "pub enum StepMutation {\n    /// `step:drain` — drain every egress queue of the switch.\n    Drain,\n    /// `step:link-down` — administratively down one link (the\n    /// marker may sit on any doc line).\n    LinkDown {\n        link: u32,\n    },\n}\n";

    #[test]
    fn tagged_step_mutation_variants_are_clean() {
        let d = lint_one("crates/experiments/src/scenario/mod.rs", GOOD_STEP_MUTATION, Box::new(ScenarioStepDoc));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn step_variant_without_marker_is_caught() {
        let src = GOOD_STEP_MUTATION.replace("`step:drain` — drain", "Drains");
        let d = lint_one("crates/experiments/src/scenario/mod.rs", &src, Box::new(ScenarioStepDoc));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Drain"), "{}", d[0].message);
        assert!(d[0].message.contains("`step:<tag>`"), "{}", d[0].message);
    }

    #[test]
    fn undocumented_step_variant_is_caught() {
        let src = GOOD_STEP_MUTATION
            .replace("    /// `step:drain` — drain every egress queue of the switch.\n", "");
        let d = lint_one("crates/experiments/src/scenario/mod.rs", &src, Box::new(ScenarioStepDoc));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("doc comment"), "{}", d[0].message);
    }

    #[test]
    fn duplicate_step_tags_are_caught() {
        let src = GOOD_STEP_MUTATION.replace("step:link-down", "step:drain");
        let d = lint_one("crates/experiments/src/scenario/mod.rs", &src, Box::new(ScenarioStepDoc));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("reuses"), "{}", d[0].message);
    }

    #[test]
    fn malformed_step_marker_is_caught() {
        // Uppercase inside the marker: treated as absent, not silently
        // accepted as a tag.
        let src = GOOD_STEP_MUTATION.replace("step:drain", "step:Drain");
        let d = lint_one("crates/experiments/src/scenario/mod.rs", &src, Box::new(ScenarioStepDoc));
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn files_without_step_mutation_are_out_of_scope() {
        assert!(lint_one(
            "crates/net/src/x.rs",
            "pub enum Other { A, B }\n",
            Box::new(ScenarioStepDoc)
        )
        .is_empty());
    }
}
