//! The rule registry: every lint rule on the token engine, the path
//! scopes they run under, and the shared pattern-matching helpers.
//!
//! Rules are grouped by what they defend:
//!
//! * [`panics`] — failure discipline: `no-unwrap`, `no-panic-in-lib`,
//!   `no-println-in-lib` (failures surface as `TcnError`, output goes
//!   through telemetry).
//! * [`safety`] — `no-unsafe`, `forbid-unsafe-attr`.
//! * [`docs`] — provenance and taxonomy docs: `aqm-doc-cite`,
//!   `cc-doc-cite`, `fault-kind-doc`, `exhaustive-kind-tags`,
//!   `scenario-step-doc`.
//! * [`determinism`] — the byte-identity discipline: `no-float-time`,
//!   `no-wallclock`, `no-hash-iter`, `no-thread-outside-runner`,
//!   `no-ambient-entropy`, `no-raw-tick-arith`.
//!
//! [`registry`] returns them all in table order; `unused-allow` (the
//! engine-level stale-escape check) is registered last so it lists and
//! documents like any other rule.

pub mod determinism;
pub mod docs;
pub mod panics;
pub mod safety;

use std::path::Path;

use crate::engine::{Diagnostic, Rule, Scope, Severity, SourceFile, UNUSED_ALLOW};
use crate::lex::{Token, TokenKind};

// ---------------------------------------------------------------------------
// Shared scope constants (the single source of truth; the legacy
// differential oracle imports these too)
// ---------------------------------------------------------------------------

/// Library crates whose `src/` trees must be panic-free in production
/// paths (the simulation core; binaries and experiment drivers may be
/// more relaxed).
pub const NO_UNWRAP_CRATES: &[&str] = &[
    "crates/core",
    "crates/sim",
    "crates/net",
    "crates/sched",
    "crates/baselines",
    "crates/transport",
];

/// The one module allowed to do raw arithmetic and float conversions on
/// tick counts: it *defines* the sanctioned operations.
pub const TIME_SANCTUARY: &str = "crates/sim/src/time.rs";

/// Repo path prefixes allowed to read the host clock: the benchmark
/// harness exists to measure wall time, and the `xtask` automation may
/// time its own stages.
pub const WALLCLOCK_SANCTUARIES: &[&str] = &["crates/bench", "xtask"];

/// Repo path prefixes whose whole purpose is terminal output.
pub const PRINTLN_SANCTUARIES: &[&str] = &["crates/experiments", "crates/bench", "xtask"];

/// Repo path prefixes exempt from `no-panic-in-lib`: leaf executables
/// already under the runner's panic isolation, plus the `xtask` CLI.
pub const PANIC_SANCTUARIES: &[&str] = &["crates/experiments", "crates/bench", "xtask"];

/// The one module allowed to touch `std::thread`: the deterministic
/// work-stealing sweep runner (canonical merge order, byte-identical at
/// any thread count). `crates/bench` and `xtask` may also thread — they
/// never produce experiment bytes.
pub const THREAD_SANCTUARY: &str = "crates/experiments/src/runner.rs";

/// Path prefixes `no-thread-outside-runner` exempts wholesale.
pub const THREAD_SANCTUARY_PREFIXES: &[&str] = &["crates/bench", "xtask"];

// ---------------------------------------------------------------------------
// Scope predicates (plain fns so `Scope` stays a Copy fn-pointer table)
// ---------------------------------------------------------------------------

pub(crate) fn every_file(_: &Path) -> bool {
    true
}

pub(crate) fn in_no_unwrap_crates(p: &Path) -> bool {
    NO_UNWRAP_CRATES
        .iter()
        .any(|c| p.starts_with(c) && p.strip_prefix(c).is_ok_and(|r| r.starts_with("src")))
}

/// Library `src/` trees: everything under `crates/*/src` and the
/// facade's `src/`, minus `src/bin/` (printing and exiting is a
/// binary's job).
pub(crate) fn in_lib_src(p: &Path) -> bool {
    (p.starts_with("crates") || p.starts_with("src"))
        && p.components().any(|c| c.as_os_str() == "src")
        && !p.components().any(|c| c.as_os_str() == "bin")
}

pub(crate) fn println_scope(p: &Path) -> bool {
    in_lib_src(p) && !PRINTLN_SANCTUARIES.iter().any(|s| p.starts_with(s))
}

pub(crate) fn panic_scope(p: &Path) -> bool {
    in_lib_src(p) && !PANIC_SANCTUARIES.iter().any(|s| p.starts_with(s))
}

pub(crate) fn outside_time_sanctuary(p: &Path) -> bool {
    p != Path::new(TIME_SANCTUARY)
}

pub(crate) fn wallclock_scope(p: &Path) -> bool {
    !WALLCLOCK_SANCTUARIES.iter().any(|s| p.starts_with(s))
}

pub(crate) fn thread_scope(p: &Path) -> bool {
    p != Path::new(THREAD_SANCTUARY)
        && !THREAD_SANCTUARY_PREFIXES.iter().any(|s| p.starts_with(s))
}

/// Crate roots: any `src/lib.rs` or `src/main.rs`.
pub(crate) fn crate_root(p: &Path) -> bool {
    p.ends_with("src/lib.rs") || p.ends_with("src/main.rs")
}

/// Where AQM implementations live.
pub(crate) fn aqm_scope(p: &Path) -> bool {
    (p.starts_with("crates/core") || p.starts_with("crates/baselines"))
        && p.components().any(|c| c.as_os_str() == "src")
}

/// Where congestion-control implementations live.
pub(crate) fn transport_scope(p: &Path) -> bool {
    p.starts_with("crates/transport") && p.components().any(|c| c.as_os_str() == "src")
}

// ---------------------------------------------------------------------------
// Token pattern helpers
// ---------------------------------------------------------------------------

/// One element of a token pattern.
pub(crate) enum Pat {
    /// An identifier with exactly this text.
    Id(&'static str),
    /// Any identifier.
    AnyId,
    /// A punct with exactly this text.
    Pu(&'static str),
}

/// True when `pat` matches `code` starting at index `i`.
pub(crate) fn seq_at(code: &[Token], i: usize, pat: &[Pat]) -> bool {
    pat.iter().enumerate().all(|(k, p)| match (code.get(i + k), p) {
        (Some(t), Pat::Id(s)) => t.is_ident(s),
        (Some(t), Pat::AnyId) => t.kind == TokenKind::Ident,
        (Some(t), Pat::Pu(s)) => t.is_punct(s),
        _ => false,
    })
}

/// Build a diagnostic anchored at a token (severity is stamped by the
/// engine).
pub(crate) fn diag_at(file: &SourceFile, t: &Token, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.path.clone(),
        line: t.line,
        col: t.col,
        rule,
        severity: Severity::Deny,
        message,
    }
}

// ---------------------------------------------------------------------------
// The engine-level stale-escape rule (registered so it lists/documents
// like any other; its diagnostics are produced by `engine::run`)
// ---------------------------------------------------------------------------

/// `unused-allow`: a `lint:allow(<rule>)` comment that suppresses zero
/// diagnostics — or names a rule that does not exist — is itself a
/// violation. The check lives in [`crate::engine::run`] because it
/// needs the usage ledger across every rule; this type only carries the
/// rule's identity for `--list` and the doc tables.
pub struct UnusedAllow;

impl Rule for UnusedAllow {
    fn id(&self) -> &'static str {
        UNUSED_ALLOW
    }
    fn summary(&self) -> &'static str {
        "a `lint:allow(<rule>)` escape that suppresses zero diagnostics (stale or unknown rule) — delete it"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file", applies: every_file }
    }
    fn check(&self, _file: &SourceFile, _out: &mut Vec<Diagnostic>) {
        // Emitted by engine::run from the suppression ledger.
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Every rule, in the order the doc tables present them: the nine
/// migrated substring-era rules first, then the determinism family this
/// engine was built to express, then the stale-escape check.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panics::NoUnwrap),
        Box::new(panics::NoPanicInLib),
        Box::new(panics::NoPrintlnInLib),
        Box::new(determinism::NoFloatTime),
        Box::new(determinism::NoWallclock),
        Box::new(safety::NoUnsafe),
        Box::new(safety::ForbidUnsafeAttr),
        Box::new(docs::AqmDocCite),
        Box::new(docs::FaultKindDoc),
        Box::new(determinism::NoHashIter),
        Box::new(determinism::NoThreadOutsideRunner),
        Box::new(determinism::NoAmbientEntropy),
        Box::new(determinism::NoRawTickArith),
        Box::new(docs::ExhaustiveKindTags),
        Box::new(docs::ScenarioStepDoc),
        Box::new(docs::CcDocCite),
        Box::new(UnusedAllow),
    ]
}

/// Levenshtein distance between two ASCII-ish strings (two-row DP).
/// Small inputs only — rule ids are short.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The registered rule id closest to a mistyped `id`, when one is
/// plausibly close (same convention as `figs scenario <id>`): ties
/// break alphabetically, and anything farther than half the input's
/// length plus slack is no suggestion at all.
pub fn nearest_rule(id: &str) -> Option<&'static str> {
    registry()
        .iter()
        .map(|r| (edit_distance(id, r.id()), r.id()))
        .min()
        .filter(|&(d, _)| d <= id.len() / 2 + 2)
        .map(|(_, name)| name)
}

/// The ids of the nine rules migrated from the substring engine — the
/// set the old-vs-new differential self-test compares.
pub const MIGRATED_RULES: &[&str] = &[
    "no-unwrap",
    "no-panic-in-lib",
    "no-println-in-lib",
    "no-float-time",
    "no-wallclock",
    "no-unsafe",
    "forbid-unsafe-attr",
    "aqm-doc-cite",
    "fault-kind-doc",
];

/// One markdown row of the rule table, exactly as `--list` prints it
/// and as the doc tables in `xtask/src/lint.rs` and `README.md` embed
/// it (a self-test asserts the three cannot drift).
pub fn table_row(rule: &dyn Rule) -> String {
    format!(
        "| `{}` | {} | {} | {} |",
        rule.id(),
        rule.severity().as_str(),
        rule.scope().desc,
        rule.summary()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn registry_ids_are_unique_and_kebab_case() {
        let rules = registry();
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate rule ids");
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id `{id}` is not kebab-case"
            );
        }
    }

    #[test]
    fn registry_covers_migrated_and_determinism_families() {
        let rules = registry();
        let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        for m in MIGRATED_RULES {
            assert!(ids.contains(m), "migrated rule `{m}` missing");
        }
        for d in [
            "no-hash-iter",
            "no-thread-outside-runner",
            "no-ambient-entropy",
            "no-raw-tick-arith",
            "exhaustive-kind-tags",
            "scenario-step-doc",
            "cc-doc-cite",
            "unused-allow",
        ] {
            assert!(ids.contains(&d), "rule `{d}` missing");
        }
        assert_eq!(rules.len(), 17);
    }

    #[test]
    fn nearest_rule_suggests_and_gives_up() {
        assert_eq!(nearest_rule("no-unwarp"), Some("no-unwrap"));
        assert_eq!(nearest_rule("scenario-step-docs"), Some("scenario-step-doc"));
        assert_eq!(nearest_rule("exhaustive-kind-tag"), Some("exhaustive-kind-tags"));
        // An exact id is its own nearest match (distance zero).
        assert_eq!(nearest_rule("unused-allow"), Some("unused-allow"));
        // Nothing plausibly close: stay silent rather than mislead.
        assert_eq!(nearest_rule("zzz"), None);
    }

    #[test]
    fn scope_predicates() {
        let p = PathBuf::from;
        assert!(in_no_unwrap_crates(&p("crates/sim/src/engine.rs")));
        assert!(!in_no_unwrap_crates(&p("crates/sim/tests/t.rs")));
        assert!(!in_no_unwrap_crates(&p("crates/stats/src/lib.rs")));
        assert!(in_lib_src(&p("crates/stats/src/lib.rs")));
        assert!(in_lib_src(&p("src/lib.rs")));
        assert!(!in_lib_src(&p("crates/experiments/src/bin/tcnsim.rs")));
        assert!(!in_lib_src(&p("examples/leaf_spine.rs")));
        assert!(!println_scope(&p("crates/experiments/src/figs.rs")));
        assert!(println_scope(&p("crates/net/src/port.rs")));
        assert!(!outside_time_sanctuary(&p("crates/sim/src/time.rs")));
        assert!(outside_time_sanctuary(&p("crates/sim/src/engine.rs")));
        assert!(!wallclock_scope(&p("xtask/src/main.rs")));
        assert!(!thread_scope(&p("crates/experiments/src/runner.rs")));
        assert!(thread_scope(&p("crates/experiments/src/figs.rs")));
        assert!(!thread_scope(&p("crates/bench/src/bin/perfbench.rs")));
        assert!(crate_root(&p("crates/net/src/lib.rs")));
        assert!(crate_root(&p("xtask/src/main.rs")));
        assert!(!crate_root(&p("crates/net/src/port.rs")));
        assert!(aqm_scope(&p("crates/baselines/src/red.rs")));
        assert!(!aqm_scope(&p("crates/net/src/port.rs")));
    }
}
