//! Failure-discipline rules: library code must surface failures as
//! [`TcnError`]s (so sweep cells quarantine instead of aborting) and
//! route observability through telemetry sinks instead of stdout.

use crate::engine::{Diagnostic, Rule, Scope, SourceFile};
use crate::rules::{diag_at, in_no_unwrap_crates, panic_scope, println_scope, seq_at, Pat};

/// `no-unwrap`: no `.unwrap()` / `.expect(` in library production code.
pub struct NoUnwrap;

impl Rule for NoUnwrap {
    fn id(&self) -> &'static str {
        "no-unwrap"
    }
    fn summary(&self) -> &'static str {
        "`.unwrap()` / `.expect(` in production code — return an error or restructure"
    }
    fn scope(&self) -> Scope {
        Scope {
            desc: "library crate `src/` (core, sim, net, sched, baselines, transport)",
            applies: in_no_unwrap_crates,
        }
    }
    fn exempts_tests(&self) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        scan_unwraps(file, self.id(), out);
    }
}

/// Report `.unwrap()` / `.expect(` call sites (shared by `no-unwrap`
/// and the `no-panic-in-lib` coverage of crates `no-unwrap` skips).
fn scan_unwraps(file: &SourceFile, rule: &'static str, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for i in 0..code.len() {
        let needle = if seq_at(code, i, &[Pat::Pu("."), Pat::Id("unwrap"), Pat::Pu("("), Pat::Pu(")")])
        {
            ".unwrap()"
        } else if seq_at(code, i, &[Pat::Pu("."), Pat::Id("expect"), Pat::Pu("(")]) {
            ".expect("
        } else {
            continue;
        };
        out.push(diag_at(
            file,
            &code[i + 1],
            rule,
            format!(
                "`{needle}…` in library code: return an error, restructure with \
                 let-else/match, or append `lint:allow({rule}): <why>`"
            ),
        ));
    }
}

/// `no-panic-in-lib`: no `panic!` in library production code — a panic
/// in a library crate aborts whichever sweep cell was executing it,
/// turning one bad configuration into a dead suite, while a typed
/// `TcnError` keeps the failure attributable and quarantinable. In
/// crates outside `NO_UNWRAP_CRATES` (whose unwraps `no-unwrap` does
/// not already police) the rule also catches `.unwrap()` / `.expect(`.
pub struct NoPanicInLib;

impl Rule for NoPanicInLib {
    fn id(&self) -> &'static str {
        "no-panic-in-lib"
    }
    fn summary(&self) -> &'static str {
        "`panic!` in library code (plus `.unwrap()`/`.expect(` where `no-unwrap` does not reach) — return a `TcnError`"
    }
    fn scope(&self) -> Scope {
        Scope {
            desc: "library `src/` trees except `src/bin/`, experiments, bench, xtask",
            applies: panic_scope,
        }
    }
    fn exempts_tests(&self) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = &file.code;
        for i in 0..code.len() {
            if seq_at(code, i, &[Pat::Id("panic"), Pat::Pu("!")]) {
                out.push(diag_at(
                    file,
                    &code[i],
                    self.id(),
                    "`panic!…` in library code can abort a whole sweep: return a \
                     TcnError (the cell runner quarantines it), or append \
                     `lint:allow(no-panic-in-lib): <why>`"
                        .to_string(),
                ));
            }
        }
        if !in_no_unwrap_crates(&file.path) {
            scan_unwraps(file, self.id(), out);
        }
    }
}

/// `no-println-in-lib`: no `println!` / `eprintln!` in library
/// production code. A library that prints hardcodes one consumer and
/// one format; this repo's answer to "I want to see what the simulator
/// did" is a `tcn-telemetry` sink.
pub struct NoPrintlnInLib;

impl Rule for NoPrintlnInLib {
    fn id(&self) -> &'static str {
        "no-println-in-lib"
    }
    fn summary(&self) -> &'static str {
        "`println!` / `eprintln!` in library code — emit a telemetry event instead"
    }
    fn scope(&self) -> Scope {
        Scope {
            desc: "library `src/` trees except `src/bin/`, experiments, bench, xtask",
            applies: println_scope,
        }
    }
    fn exempts_tests(&self) -> bool {
        true
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = &file.code;
        for i in 0..code.len() {
            for name in ["println", "eprintln"] {
                if seq_at(code, i, &[Pat::Id(name), Pat::Pu("!")]) {
                    out.push(diag_at(
                        file,
                        &code[i],
                        self.id(),
                        format!(
                            "`{name}!…` in library code: emit a tcn-telemetry event (or \
                             return the data) instead of printing, or append \
                             `lint:allow(no-println-in-lib): <why>`"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use std::path::PathBuf;

    fn lint_one(path: &str, src: &str, rule: Box<dyn Rule>) -> Vec<Diagnostic> {
        run(
            &[SourceFile::new(PathBuf::from(path), src.to_string())],
            &[rule],
        )
    }

    #[test]
    fn unwrap_and_expect_are_caught_with_cols() {
        let d = lint_one(
            "crates/sim/src/x.rs",
            "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
            Box::new(NoUnwrap),
        );
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].col), (2, 7));
        let d = lint_one(
            "crates/sim/src/x.rs",
            "pub fn f(o: Option<u32>) -> u32 {\n    o.expect(\"boom\")\n}\n",
            Box::new(NoUnwrap),
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn unwrap_in_string_or_comment_is_clean() {
        let d = lint_one(
            "crates/sim/src/x.rs",
            "// .unwrap() here\nlet s = \".unwrap()\";\n",
            Box::new(NoUnwrap),
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_in_test_mod_is_exempt() {
        let d = lint_one(
            "crates/sim/src/x.rs",
            "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n",
            Box::new(NoUnwrap),
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn panic_rule_covers_unwrap_only_outside_no_unwrap_crates() {
        let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
        let covered = lint_one("crates/sim/src/x.rs", src, Box::new(NoPanicInLib));
        assert!(covered.is_empty(), "covered crates leave unwraps to no-unwrap");
        let uncovered = lint_one("crates/stats/src/x.rs", src, Box::new(NoPanicInLib));
        assert_eq!(uncovered.len(), 1);
        assert_eq!(uncovered[0].rule, "no-panic-in-lib");
    }

    #[test]
    fn panic_and_println_are_caught() {
        let d = lint_one(
            "crates/stats/src/x.rs",
            "pub fn f() {\n    panic!(\"boom\");\n}\n",
            Box::new(NoPanicInLib),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        let d = lint_one(
            "crates/stats/src/x.rs",
            "pub fn f() {\n    eprintln!(\"x\");\n}\n",
            Box::new(NoPrintlnInLib),
        );
        assert_eq!(d.len(), 1);
    }
}
