//! Memory-safety posture rules: the simulator is pure-std and has no
//! business with `unsafe`, and every crate root must say so.

use crate::engine::{Diagnostic, Rule, Scope, Severity, SourceFile};
use crate::rules::{crate_root, diag_at, every_file, seq_at, Pat};

/// `no-unsafe`: the `unsafe` keyword anywhere (even in tests — a
/// simulator has no business with it). Token-level matching means
/// `unsafe_code` in the forbid attribute, or the word in a comment or
/// string, never trips it.
pub struct NoUnsafe;

impl Rule for NoUnsafe {
    fn id(&self) -> &'static str {
        "no-unsafe"
    }
    fn summary(&self) -> &'static str {
        "the `unsafe` keyword anywhere in the repo (tests included)"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every `.rs` file", applies: every_file }
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for t in &file.code {
            if t.is_ident("unsafe") {
                out.push(diag_at(
                    file,
                    t,
                    self.id(),
                    "`unsafe` is banned everywhere in this repo".to_string(),
                ));
            }
        }
    }
}

/// `forbid-unsafe-attr`: a crate root must carry
/// `#![forbid(unsafe_code)]` so the ban is compiler-enforced, not just
/// lint-enforced.
pub struct ForbidUnsafeAttr;

impl Rule for ForbidUnsafeAttr {
    fn id(&self) -> &'static str {
        "forbid-unsafe-attr"
    }
    fn summary(&self) -> &'static str {
        "a crate root missing `#![forbid(unsafe_code)]`"
    }
    fn scope(&self) -> Scope {
        Scope { desc: "every crate root (`src/lib.rs`, `src/main.rs`)", applies: crate_root }
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = &file.code;
        let pat = [
            Pat::Pu("#"),
            Pat::Pu("!"),
            Pat::Pu("["),
            Pat::Id("forbid"),
            Pat::Pu("("),
            Pat::Id("unsafe_code"),
            Pat::Pu(")"),
            Pat::Pu("]"),
        ];
        if (0..code.len()).any(|i| seq_at(code, i, &pat)) {
            return;
        }
        out.push(Diagnostic {
            file: file.path.clone(),
            line: 1,
            col: 0,
            rule: self.id(),
            severity: Severity::Deny,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use std::path::PathBuf;

    fn lint_one(path: &str, src: &str, rule: Box<dyn Rule>) -> Vec<Diagnostic> {
        run(
            &[SourceFile::new(PathBuf::from(path), src.to_string())],
            &[rule],
        )
    }

    #[test]
    fn unsafe_is_caught_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n";
        let d = lint_one("crates/net/src/x.rs", src, Box::new(NoUnsafe));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn unsafe_in_word_comment_or_string_is_clean() {
        let src = "#![forbid(unsafe_code)]\n// the word unsafe in a comment\nlet not_unsafe_ident = 1;\nlet s = \"unsafe\";\n";
        assert!(lint_one("crates/net/src/x.rs", src, Box::new(NoUnsafe)).is_empty());
    }

    #[test]
    fn missing_forbid_attr_is_caught() {
        let d = lint_one(
            "crates/net/src/lib.rs",
            "//! docs only\npub fn f() {}\n",
            Box::new(ForbidUnsafeAttr),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "forbid-unsafe-attr");
        assert!(lint_one(
            "crates/net/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            Box::new(ForbidUnsafeAttr)
        )
        .is_empty());
    }

    #[test]
    fn forbid_attr_in_comment_does_not_satisfy() {
        let d = lint_one(
            "crates/net/src/lib.rs",
            "// #![forbid(unsafe_code)]\npub fn f() {}\n",
            Box::new(ForbidUnsafeAttr),
        );
        assert_eq!(d.len(), 1, "a commented-out attribute is not an attribute");
    }
}
