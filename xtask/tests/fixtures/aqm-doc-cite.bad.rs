//! Planted violation: an AQM whose docs cite nothing.

/// A marking scheme described nowhere in particular.
pub struct Uncited {
    threshold: u32,
}

impl Aqm for Uncited {
    fn on_enqueue(&mut self) {}
}
