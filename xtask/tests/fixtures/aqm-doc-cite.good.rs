//! Clean equivalent: the doc names the paper section, above a derive.

/// Threshold marking per the paper (§3.1).
#[derive(Debug, Clone)]
pub struct Cited;

impl Aqm for Cited {
    fn on_enqueue(&mut self) {}
}
