//! Planted violation: a congestion controller whose docs cite nothing.

/// A window law described nowhere in particular.
pub struct UncitedCc {
    cwnd: f64,
}

impl CongestionControl for UncitedCc {
    fn on_ack(&mut self) {}
}
