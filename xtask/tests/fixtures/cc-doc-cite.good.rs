//! Clean equivalent: the doc cites the RFC section, above a derive.

/// Cubic window growth per RFC 8312 (§4.1).
#[derive(Debug, Clone)]
pub struct CitedCc;

impl CongestionControl for CitedCc {
    fn on_ack(&mut self) {}
}
