//! Planted violations: an undocumented variant, a missing arm, a
//! wildcard arm, and a duplicated tag.

pub enum TcnError {
    /// The topology cannot route between two hosts.
    Topology { detail: String },
    Config { detail: String },
    /// The liveness watchdog aborted a stuck run.
    Stall(StallReport),
}

impl TcnError {
    pub fn kind(&self) -> &'static str {
        match self {
            TcnError::Topology { .. } => "topology",
            TcnError::Config { .. } => "topology",
            _ => "other",
        }
    }
}
