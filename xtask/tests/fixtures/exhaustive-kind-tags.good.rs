//! Clean equivalent: every variant documented, every arm explicit,
//! every tag unique.

pub enum TcnError {
    /// The topology cannot route between two hosts.
    Topology { detail: String },
    /// A sweep configuration that cannot be simulated as written.
    Config { detail: String },
    /// The liveness watchdog aborted a stuck run.
    Stall(StallReport),
}

impl TcnError {
    /// Stable machine-readable tag for quarantine lists and telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            TcnError::Topology { .. } => "topology",
            TcnError::Config { .. } => "config",
            TcnError::Stall(_) => "stall",
        }
    }
}
