//! Planted violations: an undocumented variant and a stub doc.

pub enum FaultKind {
    /// A flaky optic silently eating frames on the wire.
    Loss,
    /// Drop.
    Drop,
    Corrupt,
}
