//! Clean equivalent: every variant names its real-world failure mode.

pub enum FaultKind {
    /// A flaky optic silently eating frames on the wire.
    Loss,
    /// Bit errors past the FEC budget; receiver drops on bad CRC.
    #[allow(dead_code)]
    Corrupt,
    /// Maintenance pulling the wrong cable: the link goes dark.
    LinkDown {
        link: u32,
    },
}
