//! A crate root without the compiler-enforced ban.

pub fn f() {}
