//! A crate root carrying the compiler-enforced ban.
#![forbid(unsafe_code)]

pub fn f() {}
