//! Planted violations: entropy the run seed does not control.

use std::collections::hash_map::RandomState;

pub fn ambient_seed() -> RandomState {
    RandomState::new()
}

pub fn hasher() -> u64 {
    let h = DefaultHasher::new();
    let _ = h;
    0
}
