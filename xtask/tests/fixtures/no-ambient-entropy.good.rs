//! Clean equivalent: randomness derives from the run's seeded Rng
//! sub-streams; banned names appear only in prose and strings.

// RandomState and thread_rng are banned
pub fn derived(rng: &mut Rng) -> u64 {
    rng.stream(7).next_u64()
}

pub fn label() -> &'static str {
    "OsRng"
}
