//! Planted violations: raw tick counts cast to floats.

pub fn secs(t: Time) -> f64 {
    t.as_ps() as f64 / 1e12
}

pub fn millis(t: Time) -> f32 {
    t.as_ms() as f32
}
