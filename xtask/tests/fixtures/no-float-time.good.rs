//! Clean equivalent: the named accessors carry their unit.

pub fn secs(t: Time) -> f64 {
    t.as_secs_f64()
}

// the cast may appear in prose and strings
pub fn label() -> &'static str {
    ".as_ps() as f64"
}
