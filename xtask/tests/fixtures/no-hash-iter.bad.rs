//! Planted violations: hash-ordered containers, in production code and
//! in a test mod (this rule grants tests no exemption).

use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn order_sensitive() {
        let s: HashSet<u32> = [1, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
