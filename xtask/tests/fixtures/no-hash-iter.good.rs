//! Clean equivalent: ordered containers; the banned names appear only
//! in prose and strings.

use std::collections::BTreeMap;

// HashMap in a comment is not a finding
pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn label() -> &'static str {
    "HashMap"
}
