//! Planted violations: a library panic and an unwrap in a crate
//! `no-unwrap` does not cover.

pub fn clamp(x: u32) -> u32 {
    if x > 10 {
        panic!("x out of range");
    }
    x
}

pub fn pick(o: Option<u32>) -> u32 {
    o.unwrap()
}
