//! Clean equivalent: the failure comes back as a value.

pub fn clamp(x: u32) -> Result<u32, String> {
    if x > 10 {
        return Err("x out of range".to_string());
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    #[test]
    fn assertion_helpers_may_panic() {
        if 1 + 1 != 2 {
            panic!("arithmetic broke");
        }
    }
}
