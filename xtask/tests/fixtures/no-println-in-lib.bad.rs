//! Planted violations: stdout/stderr writes from library code.

pub fn report(x: u32) {
    println!("x = {x}");
    eprintln!("warning: {x}");
}
