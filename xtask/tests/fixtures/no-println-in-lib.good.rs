//! Clean equivalent: return the rendering; let a sink print it.

pub fn report(x: u32) -> String {
    format!("x = {x}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("cargo captures this");
    }
}
