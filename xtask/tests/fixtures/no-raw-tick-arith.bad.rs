//! Planted violations: +/- on raw tick counts outside the sanctuary.

pub fn jitter_bound(max: Time) -> u64 {
    max.as_ps() + 1
}

pub fn window_end(start: Time, w: Time) -> bool {
    start.as_ps() + w.as_ps() >= 100
}

pub fn backoff(t: Time) -> u64 {
    1 + t.as_ms()
}
