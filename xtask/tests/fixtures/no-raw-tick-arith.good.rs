//! Clean equivalent: arithmetic happens on Time (checked); raw counts
//! only scale, quantize, or compare.

pub fn window_end(t: Time, start: Time, w: Time) -> bool {
    t >= start + w
}

pub fn quantize(t: Time, w: Time) -> Time {
    Time::from_ps(t.as_ps() / w.as_ps() * w.as_ps())
}

pub fn ordered(a: Time, b: Time) -> bool {
    a.as_ps() >= b.as_ps()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_raw_math() {
        let t = Time::from_ps(7);
        assert_eq!(t.as_ps() + 1, 8);
    }
}
