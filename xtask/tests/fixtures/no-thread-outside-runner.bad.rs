//! Planted violation: ambient threading outside the sweep runner.

pub fn fan_out() -> u32 {
    let h = std::thread::spawn(|| 1 + 1);
    h.join().unwrap_or(0)
}
