//! Clean equivalent: single-threaded; parallelism belongs to the
//! runner. The banned path appears only in prose and strings.

// std::thread is the runner's business
pub fn fan_out() -> u32 {
    2
}

pub fn label() -> &'static str {
    "thread::spawn"
}
