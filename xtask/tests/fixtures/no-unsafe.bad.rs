//! Planted violation: an unsafe block (tests would be flagged too).

pub fn peek(v: &[u32]) -> u32 {
    unsafe { *v.get_unchecked(0) }
}
