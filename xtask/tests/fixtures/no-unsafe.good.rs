//! Clean equivalent: the word appears only where tokens cannot.

// the word unsafe in a comment is fine
pub fn label() -> &'static str {
    "unsafe"
}

pub fn peek(v: &[u32]) -> Option<u32> {
    v.first().copied()
}
