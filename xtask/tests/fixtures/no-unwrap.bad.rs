//! Planted violations: production-path unwraps in a covered crate.

pub fn take(o: Option<u32>) -> u32 {
    o.unwrap()
}

pub fn named(o: Option<u32>) -> u32 {
    o.expect("must be set")
}
