//! Clean equivalent: errors surface, tests may unwrap, prose may
//! mention the banned call.

pub fn take(o: Option<u32>) -> Result<u32, String> {
    o.ok_or_else(|| "missing".to_string())
}

// .unwrap() in a comment is not a finding
pub fn label() -> &'static str {
    ".unwrap()"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
