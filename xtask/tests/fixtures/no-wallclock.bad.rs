//! Planted violations: host-clock reads, including inside a test mod
//! (this rule grants tests no exemption).

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timed() {
        let t0 = std::time::Instant::now();
        let _ = t0;
    }
}
