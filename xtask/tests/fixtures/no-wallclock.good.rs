//! Clean equivalent: virtual time only; the banned names appear only
//! in prose and strings.

// Instant::now is banned outside bench/xtask
pub fn label() -> &'static str {
    "std::time::Instant"
}
