//! Planted violations: an undocumented variant, a doc comment without
//! a `step:<tag>` marker, a malformed marker, and a duplicated tag.

pub enum StepMutation {
    Drain,
    /// Administratively down one link — no marker anywhere.
    LinkDown {
        link: u32,
    },
    /// `step:Link-Up` — uppercase inside the marker is malformed.
    LinkUp {
        link: u32,
    },
    /// `step:burst` — inject a synchronized incast toward one host.
    Burst {
        dst: u32,
    },
    /// `step:burst` — reuses the incast tag.
    BurstAgain {
        dst: u32,
    },
}
