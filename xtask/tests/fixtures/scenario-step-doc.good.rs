//! Clean equivalent: every variant documented with a unique backticked
//! `step:<tag>` marker (the marker may sit on any doc line).

pub enum StepMutation {
    /// `step:drain` — administratively drain every egress queue of the
    /// switch, discarding the backlog.
    Drain,
    /// `step:link-down` — administratively down one link; transports
    /// see it after the detection delay.
    LinkDown {
        link: u32,
    },
    /// Inject a synchronized incast toward one receiving host
    /// (`step:burst` — the marker need not lead the comment).
    Burst {
        dst: u32,
        senders: u32,
        bytes: u64,
    },
}
