//! Planted violations: a stale escape and a misspelled rule name.

pub fn quiet() -> u32 { // lint:allow(no-println-in-lib): nothing here prints, stale escape
    1
}

pub fn typo() -> u32 { // lint:allow(no-printn-in-lib): misspelled rule name never matches
    2
}
