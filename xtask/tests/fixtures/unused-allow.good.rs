//! Clean equivalent: the escape on the offending line suppresses a
//! real diagnostic, so it is used, justified, and legitimate.

use std::collections::HashMap; // lint:allow(no-hash-iter): never iterated — single lookup by fixed key

pub fn lookup(m: &HashMap<u32, u32>) -> Option<u32> {
    m.get(&0).copied()
}
