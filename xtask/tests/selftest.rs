//! The lint engine's own gate, run by `cargo xtask ci`'s
//! `lint-selftest` stage:
//!
//! 1. **Fixture corpus** — every registered rule has a positive
//!    (`<rule>.bad.rs`) and negative (`<rule>.good.rs`) fixture under
//!    `tests/fixtures/`; the rule must fire on the positive and stay
//!    silent on the negative.
//! 2. **Differential** — the nine rules migrated from the substring
//!    engine are replayed through the retired engine (`xtask::legacy`)
//!    on every fixture *and* on the live repo; both engines must report
//!    the same `(file, line, rule)` findings.
//! 3. **Docs** — the rule tables in `README.md` are regenerated from
//!    the registry and must not drift (`xtask/src/lint.rs`'s table has
//!    its own unit test).
//! 4. **Cleanliness** — the live repo lints clean, and the JSON
//!    serialization of any diagnostic set round-trips through the
//!    schema validator.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use xtask::engine::{filter_rules, run, to_json, SourceFile};
use xtask::rules::{registry, table_row, MIGRATED_RULES, NO_UNWRAP_CRATES};
use xtask::{jsonck, legacy, lint};

/// The workspace root (parent of `xtask/`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// The virtual repo-relative path each rule's fixtures lint under —
/// chosen so the fixture is *in scope* for its rule (and, for the
/// migrated rules, under the same scope the legacy driver used).
const FIXTURE_PATHS: &[(&str, &str)] = &[
    ("no-unwrap", "crates/sim/src/fixture.rs"),
    ("no-panic-in-lib", "crates/stats/src/fixture.rs"),
    ("no-println-in-lib", "crates/stats/src/fixture.rs"),
    ("no-float-time", "crates/net/src/fixture.rs"),
    ("no-wallclock", "crates/net/src/fixture.rs"),
    ("no-unsafe", "crates/net/src/fixture.rs"),
    ("forbid-unsafe-attr", "crates/fake/src/lib.rs"),
    ("aqm-doc-cite", "crates/baselines/src/fixture.rs"),
    ("fault-kind-doc", "crates/sim/src/fixture.rs"),
    ("no-hash-iter", "crates/net/src/fixture.rs"),
    ("no-thread-outside-runner", "crates/net/src/fixture.rs"),
    ("no-ambient-entropy", "crates/sim/src/fixture.rs"),
    ("no-raw-tick-arith", "crates/net/src/fixture.rs"),
    ("exhaustive-kind-tags", "crates/core/src/error_fixture.rs"),
    ("scenario-step-doc", "crates/experiments/src/scenario/fixture.rs"),
    ("cc-doc-cite", "crates/transport/src/fixture.rs"),
    ("unused-allow", "crates/net/src/fixture.rs"),
];

fn virtual_path(rule: &str) -> &'static Path {
    FIXTURE_PATHS
        .iter()
        .find(|(r, _)| *r == rule)
        .map(|(_, p)| Path::new(*p))
        .unwrap_or_else(|| panic!("no fixture path mapped for rule `{rule}`"))
}

/// Read `tests/fixtures/<rule>.<kind>.rs`.
fn fixture_src(rule: &str, kind: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{rule}.{kind}.rs"));
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

/// Run the full registry over one fixture and keep `rule`'s findings
/// (every rule executes so the suppression ledger behaves as in
/// production).
fn new_engine_lines(rule: &str, kind: &str) -> Vec<usize> {
    let file = SourceFile::new(virtual_path(rule).to_path_buf(), fixture_src(rule, kind));
    let diags = filter_rules(run(&[file], &registry()), &[rule.to_string()]);
    diags.iter().map(|d| d.line).collect()
}

/// Replay one migrated rule through the retired substring engine.
fn legacy_lines(rule: &str, kind: &str) -> Vec<usize> {
    let path = virtual_path(rule);
    let raw = fixture_src(rule, kind);
    let diags = match rule {
        "no-unwrap" => legacy::check_no_unwrap(path, &raw),
        "no-panic-in-lib" => {
            let covered = NO_UNWRAP_CRATES.iter().any(|c| path.starts_with(c));
            legacy::check_no_panic(path, &raw, !covered)
        }
        "no-println-in-lib" => legacy::check_no_println(path, &raw),
        "no-float-time" => legacy::check_no_float_time(path, &raw),
        "no-wallclock" => legacy::check_no_wallclock(path, &raw),
        "no-unsafe" => legacy::check_no_unsafe(path, &raw),
        "forbid-unsafe-attr" => legacy::check_forbid_attr(path, &raw),
        "aqm-doc-cite" => legacy::check_aqm_doc_cite(path, &raw),
        "fault-kind-doc" => legacy::check_fault_kind_doc(path, &raw),
        other => panic!("`{other}` is not a migrated rule"),
    };
    diags.iter().map(|d| d.line).collect()
}

#[test]
fn every_rule_fires_on_its_positive_fixture() {
    for rule in registry() {
        let lines = new_engine_lines(rule.id(), "bad");
        assert!(
            !lines.is_empty(),
            "rule `{}` reported nothing on tests/fixtures/{}.bad.rs",
            rule.id(),
            rule.id()
        );
    }
}

#[test]
fn every_rule_is_silent_on_its_negative_fixture() {
    for rule in registry() {
        let lines = new_engine_lines(rule.id(), "good");
        assert!(
            lines.is_empty(),
            "rule `{}` fired on tests/fixtures/{}.good.rs at lines {lines:?}",
            rule.id(),
            rule.id()
        );
    }
}

#[test]
fn migrated_rules_agree_with_legacy_engine_on_fixtures() {
    for rule in MIGRATED_RULES {
        for kind in ["bad", "good"] {
            let old = legacy_lines(rule, kind);
            let new = new_engine_lines(rule, kind);
            assert_eq!(
                old, new,
                "engines disagree on `{rule}` over tests/fixtures/{rule}.{kind}.rs \
                 (legacy={old:?}, token={new:?})"
            );
        }
    }
}

#[test]
fn live_corpus_differential() {
    let repo = repo_root();
    let old: BTreeSet<(String, usize, String)> = legacy::lint_repo(&repo)
        .into_iter()
        .map(|d| (d.file.display().to_string(), d.line, d.rule.to_string()))
        .collect();
    let new: BTreeSet<(String, usize, String)> = lint::lint_repo(&repo)
        .into_iter()
        .filter(|d| MIGRATED_RULES.contains(&d.rule))
        .map(|d| (d.file.display().to_string(), d.line, d.rule.to_string()))
        .collect();
    let only_old: Vec<_> = old.difference(&new).collect();
    let only_new: Vec<_> = new.difference(&old).collect();
    assert!(
        only_old.is_empty() && only_new.is_empty(),
        "substring and token engines disagree on the live corpus:\n\
         legacy-only: {only_old:?}\ntoken-only: {only_new:?}"
    );
}

#[test]
fn live_repo_lints_clean() {
    let repo = repo_root();
    let diags = lint::lint_repo(&repo);
    assert!(
        diags.is_empty(),
        "the live repo must lint clean; found:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn readme_rule_table_matches_registry() {
    let readme = fs::read_to_string(repo_root().join("README.md")).expect("README.md");
    for rule in registry() {
        let row = table_row(rule.as_ref());
        assert!(
            readme.contains(&row),
            "rule table row for `{}` missing from or stale in README.md — \
             regenerate with `cargo xtask lint --list`:\n{row}",
            rule.id()
        );
    }
}

#[test]
fn fixture_diagnostics_serialize_to_valid_json() {
    // The bad fixtures collectively exercise every rule id, multi-line
    // messages, and path escaping — a denser schema check than the
    // (clean) live corpus.
    let files: Vec<SourceFile> = registry()
        .iter()
        .map(|r| {
            SourceFile::new(virtual_path(r.id()).to_path_buf(), fixture_src(r.id(), "bad"))
        })
        .collect();
    let diags = run(&files, &registry());
    assert!(!diags.is_empty());
    let doc = to_json(&diags);
    jsonck::validate_lint_json(&doc).expect("lint JSON failed its own schema");
}
